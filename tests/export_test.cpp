#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/failpoint.h"
#include "analysis/figures.h"
#include "core/evaluator.h"
#include "core/predictor.h"
#include "report/export.h"
#include "report/series.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Export, PassiveLogRoundTrip) {
  PassiveLog log;
  log.add({ClientId(1), FrontEndId(2), 0, 10.5});
  log.add({ClientId(3), FrontEndId(0), 1, 0.25});
  log.add({ClientId(1), FrontEndId(2), 1, 99.0});

  const std::string path = temp_path("acdn_passive.csv");
  export_passive_log(log, path);
  const PassiveLog restored = import_passive_log(path);

  ASSERT_EQ(restored.days(), log.days());
  ASSERT_EQ(restored.total(), log.total());
  for (DayIndex d = 0; d < log.days(); ++d) {
    const auto original = log.by_day(d);
    const auto copy = restored.by_day(d);
    ASSERT_EQ(original.size(), copy.size()) << d;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(copy[i].client, original[i].client);
      EXPECT_EQ(copy[i].front_end, original[i].front_end);
      EXPECT_EQ(copy[i].day, original[i].day);
      EXPECT_DOUBLE_EQ(copy[i].queries, original[i].queries);
    }
  }
  std::remove(path.c_str());
}

TEST(Export, MeasurementsRoundTrip) {
  MeasurementStore store;
  store.add(testfx::make_measurement(1, 10, 0, 25.5,
                                     {{0, 40.0}, {2, 18.25}}));
  store.add(testfx::make_measurement(2, 11, 1, 12.0, {{1, 30.0}}));

  const std::string path = temp_path("acdn_measurements.csv");
  export_measurements(store, path);
  const MeasurementStore restored = import_measurements(path);

  ASSERT_EQ(restored.total(), store.total());
  ASSERT_EQ(restored.days(), store.days());
  for (DayIndex d = 0; d < store.days(); ++d) {
    const auto original = store.by_day(d);
    const auto copy = restored.by_day(d);
    ASSERT_EQ(original.size(), copy.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(copy[i].beacon_id, original[i].beacon_id);
      EXPECT_EQ(copy[i].client, original[i].client);
      EXPECT_EQ(copy[i].ldns, original[i].ldns);
      ASSERT_EQ(copy[i].targets.size(), original[i].targets.size());
      for (std::size_t t = 0; t < copy[i].targets.size(); ++t) {
        EXPECT_EQ(copy[i].targets[t].anycast, original[i].targets[t].anycast);
        EXPECT_EQ(copy[i].targets[t].front_end,
                  original[i].targets[t].front_end);
        EXPECT_DOUBLE_EQ(copy[i].targets[t].rtt_ms,
                         original[i].targets[t].rtt_ms);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Export, SimulatedDayRoundTripsLosslessly) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(1);

  const std::string path = temp_path("acdn_simday.csv");
  export_measurements(sim.measurements(), path);
  const MeasurementStore restored = import_measurements(path);
  EXPECT_EQ(restored.total(), sim.measurements().total());

  // Figure analyses on the restored store match the originals.
  const auto original = daily_improvement(sim.measurements().by_day(0),
                                          Fig5Config{});
  const auto copy = daily_improvement(restored.by_day(0), Fig5Config{});
  ASSERT_EQ(original.size(), copy.size());
  for (const auto& [group, value] : original) {
    EXPECT_DOUBLE_EQ(copy.at(group), value) << group;
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------- golden figures
//
// Small-world renditions of the fig01 / fig03 / fig09 pipelines, digested
// with FNV-1a 64. The checked-in digests pin the exported CSV bytes: a
// change in simulation, analysis, or CSV formatting shows up here, and the
// serial-vs-parallel comparison proves the executor's determinism contract
// all the way to the exported artifact.

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string render_csv(const Figure& figure, const char* name) {
  const std::string path = temp_path(name);
  figure.write_csv(path);
  std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

/// small_test with a fault schedule attached — the differential tests
/// arm every fail point at probability zero and expect golden bytes.
ScenarioConfig small_test_with(const FaultSchedule& faults) {
  ScenarioConfig config = ScenarioConfig::small_test();
  config.faults = faults;
  return config;
}

std::string fig01_csv(int threads, const FaultSchedule& faults = {}) {
  World world(small_test_with(faults));
  Rng rng = world.fork_rng("fig1");
  constexpr int kRounds = 3;
  std::vector<std::vector<Milliseconds>> per_client;
  per_client.reserve(world.clients().size());
  for (const Client24& client : world.clients().clients()) {
    std::vector<Milliseconds> best;
    for (int round = 0; round < kRounds; ++round) {
      const SimTime when{0, 3600.0 * (2 + 4 * round)};
      const auto sample =
          world.beacon().measure_all_candidates(client, when, rng);
      if (best.empty()) {
        best = sample;
      } else {
        for (std::size_t i = 0; i < best.size(); ++i) {
          best[i] = std::min(best[i], sample[i]);
        }
      }
    }
    per_client.push_back(std::move(best));
  }
  const int ns[] = {1, 3, 5};
  const auto cdfs = fig1_min_latency_by_pool_size(per_client, ns, threads);
  Figure figure("fig01 golden", "min_latency_ms", "CDF of /24s");
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    figure.add_series(
        Series{std::to_string(ns[i]) + " front-ends", cdfs[i].cdf()});
  }
  return render_csv(figure, "acdn_fig01_golden.csv");
}

std::string fig03_csv(int threads, const FaultSchedule& faults = {}) {
  World world(small_test_with(faults));
  Simulation sim(world);
  sim.run_days(2);
  std::vector<BeaconMeasurement> all;
  for (DayIndex d = 0; d < 2; ++d) {
    const auto day = sim.measurements().by_day(d);
    all.insert(all.end(), day.begin(), day.end());
  }
  const DistributionBuilder world_d = fig3_anycast_minus_best_unicast(
      all, world.clients(), std::nullopt, threads);
  const DistributionBuilder europe = fig3_anycast_minus_best_unicast(
      all, world.clients(), Region::kEurope, threads);
  const double xs[] = {0, 10, 25, 50, 100};
  Figure figure("fig03 golden", "difference_ms", "CCDF of requests");
  figure.add_series(Series{"World", world_d.ccdf_at(xs)});
  figure.add_series(Series{"Europe", europe.ccdf_at(xs)});
  return render_csv(figure, "acdn_fig03_golden.csv");
}

std::string fig09_csv(int threads, const FaultSchedule& faults = {}) {
  ScenarioConfig config = small_test_with(faults);
  config.schedule.beacon_sampling = 0.15;
  World world(config);
  Simulation sim(world);
  sim.run_days(2);

  PredictionEvaluator::Config eval_config;
  eval_config.epsilon_ms = 0.0;
  eval_config.min_eval_samples = 1;
  eval_config.threads = threads;
  const PredictionEvaluator evaluator(world.clients(), world.ldns(),
                                      eval_config);
  Figure figure("fig09 golden", "improvement_ms", "CDF of weighted /24s");
  for (Grouping grouping : {Grouping::kEcsPrefix, Grouping::kLdns}) {
    PredictorConfig pc;
    pc.metric = PredictionMetric::kP25;
    pc.min_measurements = 1;
    pc.grouping = grouping;
    pc.threads = threads;
    HistoryPredictor predictor(pc);
    predictor.train(sim.measurements().by_day(0));
    const auto outcomes =
        evaluator.evaluate(predictor, sim.measurements().by_day(1));
    const EvalSummary summary = evaluator.summarize(outcomes);
    if (!summary.improvement_p50.empty()) {
      figure.add_series(Series{std::string(to_string(grouping)) + " p50",
                               summary.improvement_p50.cdf()});
    }
  }
  return render_csv(figure, "acdn_fig09_golden.csv");
}

TEST(GoldenFigures, Fig01SerialParallelAndDigestAgree) {
  const std::string serial = fig01_csv(1);
  const std::string parallel = fig01_csv(7);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a64(serial), 0x19aa0673cd067cd4ull);
}

TEST(GoldenFigures, Fig03SerialParallelAndDigestAgree) {
  const std::string serial = fig03_csv(1);
  const std::string parallel = fig03_csv(7);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a64(serial), 0xde0b818736d362f4ull);
}

TEST(GoldenFigures, Fig09SerialParallelAndDigestAgree) {
  const std::string serial = fig09_csv(1);
  const std::string parallel = fig09_csv(7);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a64(serial), 0x58a16c56097e98caull);
}

TEST(GoldenFigures, ArmedAtZeroProbabilityIsByteIdenticalToDisarmed) {
  // Differential guarantee of the fault-injection layer: arming every
  // known fail point at p = 0.0 walks all the armed code paths (site-up
  // checks, per-fetch and per-row decisions, writer checks) yet changes
  // no decision and consumes no randomness — the exported figure bytes
  // must match the disarmed golden digests exactly.
  FaultSchedule zero;
  zero.seed = 0xd1ffull;
  for (const std::string_view point : known_fail_points()) {
    zero.rules.push_back({std::string(point), FaultKind::kDrop, 0.0, 0,
                          kFaultWindowOpen, 0.0});
  }
  EXPECT_EQ(fnv1a64(fig01_csv(3, zero)), 0x19aa0673cd067cd4ull);
  EXPECT_EQ(fnv1a64(fig03_csv(3, zero)), 0xde0b818736d362f4ull);
  EXPECT_EQ(fnv1a64(fig09_csv(3, zero)), 0x58a16c56097e98caull);
  FailPointRegistry::global().disarm();
}

TEST(Export, ImportRejectsMalformedInput) {
  const std::string path = temp_path("acdn_bad.csv");
  {
    std::ofstream out(path);
    out << "day,client,front_end,queries\n1,2,notanumber,4\n";
  }
  EXPECT_THROW((void)import_passive_log(path), Error);
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW((void)import_passive_log(path), Error);
  EXPECT_THROW((void)import_measurements(path), Error);
  EXPECT_THROW((void)import_passive_log("/nonexistent/file.csv"), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acdn
