#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "analysis/figures.h"
#include "report/export.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Export, PassiveLogRoundTrip) {
  PassiveLog log;
  log.add({ClientId(1), FrontEndId(2), 0, 10.5});
  log.add({ClientId(3), FrontEndId(0), 1, 0.25});
  log.add({ClientId(1), FrontEndId(2), 1, 99.0});

  const std::string path = temp_path("acdn_passive.csv");
  export_passive_log(log, path);
  const PassiveLog restored = import_passive_log(path);

  ASSERT_EQ(restored.days(), log.days());
  ASSERT_EQ(restored.total(), log.total());
  for (DayIndex d = 0; d < log.days(); ++d) {
    const auto original = log.by_day(d);
    const auto copy = restored.by_day(d);
    ASSERT_EQ(original.size(), copy.size()) << d;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(copy[i].client, original[i].client);
      EXPECT_EQ(copy[i].front_end, original[i].front_end);
      EXPECT_EQ(copy[i].day, original[i].day);
      EXPECT_DOUBLE_EQ(copy[i].queries, original[i].queries);
    }
  }
  std::remove(path.c_str());
}

TEST(Export, MeasurementsRoundTrip) {
  MeasurementStore store;
  store.add(testfx::make_measurement(1, 10, 0, 25.5,
                                     {{0, 40.0}, {2, 18.25}}));
  store.add(testfx::make_measurement(2, 11, 1, 12.0, {{1, 30.0}}));

  const std::string path = temp_path("acdn_measurements.csv");
  export_measurements(store, path);
  const MeasurementStore restored = import_measurements(path);

  ASSERT_EQ(restored.total(), store.total());
  ASSERT_EQ(restored.days(), store.days());
  for (DayIndex d = 0; d < store.days(); ++d) {
    const auto original = store.by_day(d);
    const auto copy = restored.by_day(d);
    ASSERT_EQ(original.size(), copy.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(copy[i].beacon_id, original[i].beacon_id);
      EXPECT_EQ(copy[i].client, original[i].client);
      EXPECT_EQ(copy[i].ldns, original[i].ldns);
      ASSERT_EQ(copy[i].targets.size(), original[i].targets.size());
      for (std::size_t t = 0; t < copy[i].targets.size(); ++t) {
        EXPECT_EQ(copy[i].targets[t].anycast, original[i].targets[t].anycast);
        EXPECT_EQ(copy[i].targets[t].front_end,
                  original[i].targets[t].front_end);
        EXPECT_DOUBLE_EQ(copy[i].targets[t].rtt_ms,
                         original[i].targets[t].rtt_ms);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Export, SimulatedDayRoundTripsLosslessly) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(1);

  const std::string path = temp_path("acdn_simday.csv");
  export_measurements(sim.measurements(), path);
  const MeasurementStore restored = import_measurements(path);
  EXPECT_EQ(restored.total(), sim.measurements().total());

  // Figure analyses on the restored store match the originals.
  const auto original = daily_improvement(sim.measurements().by_day(0),
                                          Fig5Config{});
  const auto copy = daily_improvement(restored.by_day(0), Fig5Config{});
  ASSERT_EQ(original.size(), copy.size());
  for (const auto& [group, value] : original) {
    EXPECT_DOUBLE_EQ(copy.at(group), value) << group;
  }
  std::remove(path.c_str());
}

TEST(Export, ImportRejectsMalformedInput) {
  const std::string path = temp_path("acdn_bad.csv");
  {
    std::ofstream out(path);
    out << "day,client,front_end,queries\n1,2,notanumber,4\n";
  }
  EXPECT_THROW((void)import_passive_log(path), Error);
  {
    std::ofstream out(path);
    out << "wrong,header\n";
  }
  EXPECT_THROW((void)import_passive_log(path), Error);
  EXPECT_THROW((void)import_measurements(path), Error);
  EXPECT_THROW((void)import_passive_log("/nonexistent/file.csv"), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acdn
