// Unit coverage for the fail-point registry: schedule validation, the
// pure-hash determinism contract, window semantics, trigger accounting,
// and the zero-cost-when-off guarantee at the registry level.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/metrics.h"

namespace acdn {
namespace {

/// Arms `rules` under `seed` and disarms again when the test ends, so
/// the process-wide registry never leaks state across tests.
class ArmedSchedule {
 public:
  ArmedSchedule(std::uint64_t seed, std::vector<FaultRule> rules) {
    FaultSchedule schedule;
    schedule.seed = seed;
    schedule.rules = std::move(rules);
    FailPointRegistry::global().arm(schedule);
  }
  ~ArmedSchedule() { FailPointRegistry::global().disarm(); }
};

FaultRule rule(std::string point, FaultKind kind, double p,
               DayIndex first = 0, DayIndex last = kFaultWindowOpen,
               double magnitude = 0.0) {
  return FaultRule{std::move(point), kind, p, first, last, magnitude};
}

TEST(FaultKindNames, RoundTrip) {
  for (const FaultKind k : {FaultKind::kDrop, FaultKind::kDelay,
                            FaultKind::kCorrupt, FaultKind::kError}) {
    EXPECT_EQ(parse_fault_kind(to_string(k)), k);
  }
  EXPECT_THROW((void)parse_fault_kind("explode"), ConfigError);
}

TEST(FaultScheduleValidate, AcceptsEmptyAndFullProbability) {
  FaultSchedule empty;
  EXPECT_NO_THROW(empty.validate());

  FaultSchedule always;
  always.rules = {rule("dns/resolve", FaultKind::kError, 1.0)};
  EXPECT_NO_THROW(always.validate());
}

TEST(FaultScheduleValidate, RejectsMalformedRules) {
  const auto expect_bad = [](FaultRule r) {
    FaultSchedule s;
    s.rules = {std::move(r)};
    EXPECT_THROW(s.validate(), ConfigError);
  };
  expect_bad(rule("not/a/point", FaultKind::kDrop, 0.5));
  expect_bad(rule("dns/resolve", FaultKind::kDrop, -0.1));
  expect_bad(rule("dns/resolve", FaultKind::kDrop, 1.5));
  expect_bad(rule("dns/resolve", FaultKind::kDrop, 0.0 / 0.0));  // NaN
  expect_bad(rule("dns/resolve", FaultKind::kDrop, 0.5, -1));
  expect_bad(rule("dns/resolve", FaultKind::kDrop, 0.5, 5, 3));  // empty
  expect_bad(rule("dns/resolve", FaultKind::kDelay, 0.5, 0,
                  kFaultWindowOpen, 0.0));  // delay needs magnitude
  expect_bad(rule("dns/resolve", FaultKind::kCorrupt, 0.5, 0,
                  kFaultWindowOpen, -2.0));
}

TEST(FaultScheduleValidate, RejectsOverlappingWindowsPerPoint) {
  FaultSchedule s;
  s.rules = {rule("dns/resolve", FaultKind::kDrop, 0.1, 0, 5),
             rule("dns/resolve", FaultKind::kError, 0.2, 5, 9)};
  EXPECT_THROW(s.validate(), ConfigError);  // day 5 governed twice

  // Disjoint windows on one point, overlapping on different points: fine.
  s.rules = {rule("dns/resolve", FaultKind::kDrop, 0.1, 0, 4),
             rule("dns/resolve", FaultKind::kError, 0.2, 5, 9),
             rule("beacon/http_fetch", FaultKind::kDrop, 0.3, 0,
                  kFaultWindowOpen)};
  EXPECT_NO_THROW(s.validate());

  // Open-ended windows overlap everything at or after first_day.
  s.rules = {rule("dns/resolve", FaultKind::kDrop, 0.1, 3, kFaultWindowOpen),
             rule("dns/resolve", FaultKind::kError, 0.2, 7, 8)};
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(FailPointRegistry, ArmRejectsBadSchedulesAtomically) {
  FaultSchedule bad;
  bad.rules = {rule("dns/resolve", FaultKind::kDrop, 2.0)};
  EXPECT_THROW(FailPointRegistry::global().arm(bad), ConfigError);
  EXPECT_FALSE(fail_points_armed());
}

TEST(FailPoint, DisarmedNeverFires) {
  FailPointRegistry::global().disarm();
  const FailPoint fp("dns/resolve");
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_FALSE(fp.fire(0, c).has_value());
  }
  EXPECT_EQ(FailPointRegistry::global().total_triggered(), 0u);
}

TEST(FailPoint, ProbabilityZeroNeverFiresAndProbabilityOneAlwaysFires) {
  const ArmedSchedule armed(
      99, {rule("dns/resolve", FaultKind::kDrop, 0.0),
           rule("beacon/http_fetch", FaultKind::kError, 1.0)});
  const FailPoint never("dns/resolve");
  const FailPoint always("beacon/http_fetch");
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_FALSE(never.fire(0, c).has_value());
    const auto fault = always.fire(0, c);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->kind, FaultKind::kError);
  }
  const auto counts = FailPointRegistry::global().trigger_counts();
  EXPECT_EQ(counts.at("dns/resolve"), 0u);
  EXPECT_EQ(counts.at("beacon/http_fetch"), 200u);
}

TEST(FailPoint, DecisionsArePureInSeedDayAndCoordinate) {
  // Same (seed, day, coordinate) always decides the same way, in any call
  // order — the property that makes schedules thread-count independent.
  std::vector<std::uint64_t> coords;
  for (std::uint64_t c = 0; c < 512; ++c) coords.push_back(c * 7919);

  const auto fired_set = [&](bool reversed) {
    const ArmedSchedule armed(
        1234, {rule("beacon/store", FaultKind::kDrop, 0.3)});
    const FailPoint fp("beacon/store");
    std::set<std::uint64_t> fired;
    auto order = coords;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const std::uint64_t c : order) {
      if (fp.fire(2, c)) fired.insert(c);
    }
    return fired;
  };
  const auto forward = fired_set(false);
  const auto backward = fired_set(true);
  EXPECT_EQ(forward, backward);
  // ~30% of 512 coordinates; loose bounds, deterministic given the seed.
  EXPECT_GT(forward.size(), 100u);
  EXPECT_LT(forward.size(), 220u);
}

TEST(FailPoint, DifferentSeedsDecideDifferently) {
  const auto fired_count = [](std::uint64_t seed) {
    const ArmedSchedule armed(
        seed, {rule("beacon/store", FaultKind::kDrop, 0.5)});
    const FailPoint fp("beacon/store");
    std::set<std::uint64_t> fired;
    for (std::uint64_t c = 0; c < 256; ++c) {
      if (fp.fire(0, c)) fired.insert(c);
    }
    return fired;
  };
  EXPECT_NE(fired_count(1), fired_count(2));
}

TEST(FailPoint, WindowsGateByDay) {
  const ArmedSchedule armed(
      7, {rule("bgp/session", FaultKind::kError, 1.0, 2, 4)});
  const FailPoint fp("bgp/session");
  EXPECT_FALSE(fp.fire(0, 1).has_value());
  EXPECT_FALSE(fp.fire(1, 1).has_value());
  EXPECT_TRUE(fp.fire(2, 1).has_value());
  EXPECT_TRUE(fp.fire(4, 1).has_value());
  EXPECT_FALSE(fp.fire(5, 1).has_value());
}

TEST(FailPoint, DisjointWindowsPickTheCoveringRule) {
  const ArmedSchedule armed(
      7, {rule("bgp/session", FaultKind::kDrop, 1.0, 0, 1),
          rule("bgp/session", FaultKind::kError, 1.0, 2, 3)});
  const FailPoint fp("bgp/session");
  EXPECT_EQ(fp.fire(1, 0)->kind, FaultKind::kDrop);
  EXPECT_EQ(fp.fire(2, 0)->kind, FaultKind::kError);
  EXPECT_FALSE(fp.fire(4, 0).has_value());
}

TEST(FailPoint, TriggerCountsMatchFiredMetrics) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);
  {
    const ArmedSchedule armed(
        5, {rule("csv/write", FaultKind::kError, 0.5)});
    const FailPoint fp("csv/write");
    std::uint64_t fired = 0;
    for (std::uint64_t c = 0; c < 300; ++c) {
      if (fp.fire(0, c)) ++fired;
    }
    EXPECT_GT(fired, 0u);
    const auto counts = FailPointRegistry::global().trigger_counts();
    EXPECT_EQ(counts.at("csv/write"), fired);
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("fault.fired.csv/write"), fired);
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}

TEST(FailPoint, ArmResetsTriggerCounts) {
  const ArmedSchedule armed(5,
                            {rule("csv/write", FaultKind::kError, 1.0)});
  const FailPoint fp("csv/write");
  (void)fp.fire(0, 0);
  EXPECT_EQ(FailPointRegistry::global().trigger_counts().at("csv/write"),
            1u);
  FaultSchedule again;
  again.rules = {rule("csv/write", FaultKind::kError, 1.0)};
  FailPointRegistry::global().arm(again);
  EXPECT_EQ(FailPointRegistry::global().trigger_counts().at("csv/write"),
            0u);
}

TEST(FailPoint, KnownPointsAreSortedAndConstructible) {
  const auto points = known_fail_points();
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  for (const std::string_view p : points) {
    EXPECT_NO_THROW(FailPoint{p});
  }
}

TEST(FailPoint, CoordinateHelperIsStable) {
  EXPECT_EQ(fault_coordinate("fig01.csv"), fault_coordinate("fig01.csv"));
  EXPECT_NE(fault_coordinate("fig01.csv"), fault_coordinate("fig03.csv"));
}

}  // namespace
}  // namespace acdn
