#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/flat_group.h"
#include "common/rng.h"

namespace acdn {
namespace {

// ---------------------------------------------------------- parallel_sort

struct Keyed {
  std::uint32_t key = 0;
  std::uint32_t seq = 0;

  [[nodiscard]] bool operator==(const Keyed&) const = default;
};

std::vector<Keyed> random_keyed(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Keyed> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Few distinct keys: long duplicate runs stress the tie-breaker.
    v.push_back(Keyed{std::uint32_t(rng.uniform_int(0, 99)),
                      std::uint32_t(i)});
  }
  return v;
}

TEST(ParallelSort, MatchesSerialSortForAnyThreadCount) {
  // Larger than one sort grain so the merge tree actually runs.
  const std::size_t n = (kSortGrain * 5) / 2;
  const auto less = [](const Keyed& a, const Keyed& b) {
    return std::tie(a.key, a.seq) < std::tie(b.key, b.seq);
  };
  std::vector<Keyed> expected = random_keyed(n, 42);
  std::sort(expected.begin(), expected.end(), less);

  for (int threads : {1, 2, 5, 16}) {
    std::vector<Keyed> v = random_keyed(n, 42);
    parallel_sort(std::span<Keyed>(v), threads, less);
    EXPECT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(ParallelSort, EmptyAndSingleElement) {
  std::vector<int> empty;
  parallel_sort(std::span<int>(empty), 4);
  EXPECT_TRUE(empty.empty());

  std::vector<int> one{7};
  parallel_sort(std::span<int>(one), 4);
  EXPECT_EQ(one, std::vector<int>{7});
}

// ----------------------------------------------------------- for_each_run

TEST(ForEachRun, VisitsMaximalRunsInOrder) {
  const std::vector<int> v{1, 1, 2, 3, 3, 3};
  std::vector<acdn::Run> runs;
  for_each_run(
      std::span<const int>(v), [](int a, int b) { return a == b; },
      [&](acdn::Run r) { runs.push_back(r); });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].begin, 0u);
  EXPECT_EQ(runs[0].end, 2u);
  EXPECT_EQ(runs[1].begin, 2u);
  EXPECT_EQ(runs[1].end, 3u);
  EXPECT_EQ(runs[2].begin, 3u);
  EXPECT_EQ(runs[2].end, 6u);
  EXPECT_EQ(runs[2].size(), 3u);
}

TEST(ForEachRun, EmptySpanVisitsNothing) {
  const std::vector<int> v;
  std::size_t calls = 0;
  for_each_run(
      std::span<const int>(v), [](int a, int b) { return a == b; },
      [&](acdn::Run) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(SortGroupBy, GroupsAscending) {
  std::vector<std::pair<int, int>> v{{3, 0}, {1, 1}, {3, 2}, {1, 3}};
  std::vector<int> keys;
  std::vector<std::size_t> sizes;
  sort_group_by(
      std::span<std::pair<int, int>>(v), 2,
      [](const auto& a, const auto& b) { return a < b; },
      [](const auto& a, const auto& b) { return a.first == b.first; },
      [&](acdn::Run r) {
        keys.push_back(v[r.begin].first);
        sizes.push_back(r.size());
      });
  EXPECT_EQ(keys, (std::vector<int>{1, 3}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2}));
}

// ---------------------------------------------------------------- FlatMap

TEST(FlatMap, AppendFindIterate) {
  FlatMap<std::uint32_t, double> m;
  EXPECT_TRUE(m.empty());
  m.reserve(3);
  m.append(2, 20.0);
  m.append(5, 50.0);
  m.append(9, 90.0);
  EXPECT_EQ(m.size(), 3u);

  EXPECT_EQ(m.count(5), 1u);
  EXPECT_EQ(m.count(4), 0u);
  EXPECT_TRUE(m.contains(9));
  EXPECT_DOUBLE_EQ(m.at(2), 20.0);
  EXPECT_EQ(m.find(7), m.end());
  ASSERT_NE(m.find(5), m.end());
  EXPECT_DOUBLE_EQ(m.find(5)->second, 50.0);

  // Ascending iteration, like the std::map it replaces.
  std::vector<std::uint32_t> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{2, 5, 9}));
}

TEST(FlatMap, SubscriptInsertsSorted) {
  FlatMap<std::string, int> m;
  ++m["us"];
  ++m["de"];
  ++m["us"];
  m["br"] += 3;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("us"), 2);
  EXPECT_EQ(m.at("de"), 1);
  EXPECT_EQ(m.at("br"), 3);
  std::vector<std::string> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"br", "de", "us"}));
}

TEST(FlatMap, ClearKeepsNothing) {
  FlatMap<int, int> m;
  m.append(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());
}

}  // namespace
}  // namespace acdn
