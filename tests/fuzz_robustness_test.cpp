// Robustness sweeps: deterministic random-input hammering of the parsers
// and importers. None of these inputs may crash, hang, or corrupt state —
// malformed input either parses to nullopt or throws acdn::Error.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "net/ipv4.h"
#include "report/export.h"

namespace acdn {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "0123456789./,abcxyz \t-+eE\"\n";
  const std::size_t len = rng.uniform_index(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.uniform_index(sizeof kAlphabet - 1)];
  }
  return out;
}

TEST(FuzzRobustness, Ipv4ParseNeverCrashes) {
  Rng rng(1001);
  int parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    // Half the inputs are pure noise; half are near-misses built from
    // numeric octet-ish pieces, which exercise the boundary checks.
    std::string text;
    if (rng.bernoulli(0.5)) {
      text = random_text(rng, 20);
    } else {
      for (int octet = 0; octet < rng.uniform_int(3, 5); ++octet) {
        if (octet > 0) text += '.';
        text += std::to_string(rng.uniform_int(-5, 300));
      }
    }
    const auto addr = Ipv4Address::parse(text);
    if (addr) {
      ++parsed;
      // Anything that parses must round-trip.
      EXPECT_EQ(Ipv4Address::parse(addr->to_string()), addr);
    }
  }
  EXPECT_GT(parsed, 0);
}

TEST(FuzzRobustness, PrefixParseNeverCrashes) {
  Rng rng(1002);
  for (int i = 0; i < 20000; ++i) {
    const std::string text = random_text(rng, 24);
    const auto prefix = Prefix::parse(text);
    if (prefix) {
      EXPECT_GE(prefix->length(), 0);
      EXPECT_LE(prefix->length(), 32);
      EXPECT_EQ(Prefix::parse(prefix->to_string()), prefix);
    }
  }
}

TEST(FuzzRobustness, PrefixParseBoundaryCases) {
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0").has_value());
  EXPECT_TRUE(Prefix::parse("255.255.255.255/32").has_value());
  EXPECT_FALSE(Prefix::parse("255.255.255.255/33").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/"));
  EXPECT_FALSE(Prefix::parse("/24"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4//24"));
}

TEST(FuzzRobustness, PassiveImportSurvivesMutations) {
  // Start from a valid file, then corrupt single lines; every import
  // either succeeds or throws acdn::Error — never crashes.
  const std::string path = ::testing::TempDir() + "acdn_fuzz_passive.csv";
  const std::string valid =
      "day,client,front_end,queries\n0,1,2,10.5\n1,3,0,0.25\n";
  Rng rng(1003);
  int exceptions = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] =
        static_cast<char>('!' + rng.uniform_index(90));
    {
      std::ofstream out(path);
      out << mutated;
    }
    try {
      const PassiveLog log = import_passive_log(path);
      EXPECT_LE(log.total(), 4u);
    } catch (const Error&) {
      ++exceptions;
    }
  }
  EXPECT_GT(exceptions, 0);  // corrupting the header or numbers must throw
  std::remove(path.c_str());
}

TEST(FuzzRobustness, FaultScheduleValidationSurvivesRandomConfigs) {
  // Random fault schedules — garbage points, out-of-range and NaN
  // probabilities, inverted and overlapping windows, p = 1.0 storms —
  // must either arm cleanly (and then disarm) or throw ConfigError.
  // Nothing may crash or leave the registry half-armed.
  Rng rng(1005);
  const auto points = known_fail_points();
  int armed = 0;
  int rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    FaultSchedule schedule;
    schedule.seed = rng.next_u64();
    const int rules = rng.uniform_int(0, 5);
    for (int r = 0; r < rules; ++r) {
      FaultRule rule;
      if (rng.bernoulli(0.8)) {
        rule.point = std::string(points[rng.uniform_index(points.size())]);
      } else {
        rule.point = random_text(rng, 24);  // almost surely unknown
      }
      rule.kind = static_cast<FaultKind>(rng.uniform_int(0, 3));
      switch (rng.uniform_int(0, 3)) {
        case 0: rule.probability = rng.uniform(-0.5, 1.5); break;
        case 1: rule.probability = rng.bernoulli(0.5) ? 0.0 : 1.0; break;
        case 2: rule.probability =
            std::numeric_limits<double>::quiet_NaN(); break;
        default: rule.probability = rng.uniform(0.0, 1.0); break;
      }
      rule.first_day = rng.uniform_int(-2, 6);
      rule.last_day = rng.bernoulli(0.3)
                          ? kFaultWindowOpen
                          : rng.uniform_int(-2, 6);  // often inverted/empty
      rule.magnitude = rng.bernoulli(0.8) ? rng.uniform(0.0, 50.0) : -1.0;
      schedule.rules.push_back(std::move(rule));
    }
    try {
      FailPointRegistry::global().arm(schedule);
      ++armed;
      EXPECT_EQ(fail_points_armed(), !schedule.rules.empty());
      // An armed schedule is usable: probing every point never throws.
      for (const std::string_view point : points) {
        const FailPoint fp(point);
        (void)fp.fire(0, 17);
      }
      FailPointRegistry::global().disarm();
    } catch (const ConfigError&) {
      ++rejected;
      EXPECT_FALSE(fail_points_armed());  // arm() validates before install
    }
  }
  EXPECT_GT(armed, 0);
  EXPECT_GT(rejected, 0);
  FailPointRegistry::global().disarm();
}

TEST(FuzzRobustness, FaultScheduleRejectsTheDocumentedShapes) {
  const auto rejects = [](FaultRule rule) {
    FaultSchedule s;
    s.rules = {std::move(rule)};
    EXPECT_THROW(s.validate(), ConfigError);
  };
  // Empty window (last < first, not open-ended).
  rejects({"dns/resolve", FaultKind::kDrop, 0.5, 4, 2, 0.0});
  // p outside [0, 1] either side.
  rejects({"dns/resolve", FaultKind::kDrop, 1.0001, 0, kFaultWindowOpen,
           0.0});
  rejects({"dns/resolve", FaultKind::kDrop, -0.0001, 0, kFaultWindowOpen,
           0.0});
  // Overlapping windows for one point, including p = 1.0 storms.
  FaultSchedule overlap;
  overlap.rules = {
      {"bgp/session", FaultKind::kError, 1.0, 0, kFaultWindowOpen, 0.0},
      {"bgp/session", FaultKind::kError, 1.0, 3, 4, 0.0}};
  EXPECT_THROW(overlap.validate(), ConfigError);
}

TEST(FuzzRobustness, MeasurementImportSurvivesMutations) {
  const std::string path = ::testing::TempDir() + "acdn_fuzz_meas.csv";
  const std::string valid =
      "beacon_id,day,hour,client,ldns,anycast,front_end,rtt_ms\n"
      "12,0,1.5,3,4,1,0,25.5\n12,0,1.5,3,4,0,2,18\n";
  Rng rng(1004);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] = static_cast<char>('!' + rng.uniform_index(90));
    {
      std::ofstream out(path);
      out << mutated;
    }
    try {
      const MeasurementStore store = import_measurements(path);
      EXPECT_LE(store.total(), 2u);
    } catch (const Error&) {
      // expected for most corruptions
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acdn
