#include <gtest/gtest.h>

#include "common/error.h"
#include "geo/geo_point.h"
#include "geo/geolocation.h"
#include "geo/metro.h"

namespace acdn {
namespace {

constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kNewYork{40.71, -74.01};
constexpr GeoPoint kSydney{-33.87, 151.21};

TEST(Haversine, KnownDistances) {
  // London - New York is about 5570 km.
  EXPECT_NEAR(haversine_km(kLondon, kNewYork), 5570.0, 60.0);
  // London - Sydney is about 16990 km.
  EXPECT_NEAR(haversine_km(kLondon, kSydney), 16990.0, 150.0);
}

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine_km(kLondon, kLondon), 0.0);
}

TEST(Haversine, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine_km(kLondon, kNewYork),
                   haversine_km(kNewYork, kLondon));
}

TEST(DestinationPoint, RoundTripsDistance) {
  for (double bearing : {0.0, 45.0, 90.0, 180.0, 270.0}) {
    const GeoPoint p = destination_point(kLondon, bearing, 500.0);
    EXPECT_NEAR(haversine_km(kLondon, p), 500.0, 1.0) << bearing;
  }
}

TEST(DestinationPoint, ZeroDistanceIsIdentity) {
  const GeoPoint p = destination_point(kNewYork, 123.0, 0.0);
  EXPECT_NEAR(p.lat_deg, kNewYork.lat_deg, 1e-9);
  EXPECT_NEAR(p.lon_deg, kNewYork.lon_deg, 1e-9);
}

TEST(Bearing, CardinalDirections) {
  // Due north.
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {10, 0}), 0.0, 0.5);
  // Due east.
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {0, 10}), 90.0, 0.5);
  // Due south.
  EXPECT_NEAR(initial_bearing_deg({0, 0}, {-10, 0}), 180.0, 0.5);
}

// -------------------------------------------------------- MetroDatabase

TEST(MetroDatabase, WorldHasExpectedScale) {
  const MetroDatabase& db = MetroDatabase::world();
  EXPECT_GE(db.size(), 100u);
  EXPECT_LE(db.size(), 320u);
}

TEST(MetroDatabase, IdsAreSequential) {
  const MetroDatabase& db = MetroDatabase::world();
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.metro(MetroId(static_cast<std::uint32_t>(i))).id.value, i);
  }
}

TEST(MetroDatabase, FindByName) {
  const MetroDatabase& db = MetroDatabase::world();
  const auto london = db.find_by_name("London");
  ASSERT_TRUE(london.has_value());
  EXPECT_EQ(db.metro(*london).country, "GB");
  EXPECT_EQ(db.metro(*london).region, Region::kEurope);
  EXPECT_FALSE(db.find_by_name("Atlantis").has_value());
}

TEST(MetroDatabase, NearestFindsSelf) {
  const MetroDatabase& db = MetroDatabase::world();
  for (const char* name : {"Tokyo", "Chicago", "Moscow", "Sydney"}) {
    const auto id = db.find_by_name(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(db.nearest(db.metro(*id).location), *id) << name;
  }
}

TEST(MetroDatabase, KNearestIsSortedByDistance) {
  const MetroDatabase& db = MetroDatabase::world();
  const GeoPoint paris{48.86, 2.35};
  const auto nearest = db.k_nearest(paris, 10);
  ASSERT_EQ(nearest.size(), 10u);
  for (std::size_t i = 1; i < nearest.size(); ++i) {
    EXPECT_LE(haversine_km(paris, db.metro(nearest[i - 1]).location),
              haversine_km(paris, db.metro(nearest[i]).location));
  }
  EXPECT_EQ(nearest.front(), db.find_by_name("Paris").value());
}

TEST(MetroDatabase, WithinRadius) {
  const MetroDatabase& db = MetroDatabase::world();
  const auto london = db.metro(db.find_by_name("London").value());
  const auto close = db.within_radius(london.location, 500.0);
  // London itself plus nearby European metros.
  EXPECT_GE(close.size(), 2u);
  for (MetroId m : close) {
    EXPECT_LE(haversine_km(london.location, db.metro(m).location), 500.0);
  }
}

TEST(MetroDatabase, RegionQueries) {
  const MetroDatabase& db = MetroDatabase::world();
  const auto na = db.in_region(Region::kNorthAmerica);
  EXPECT_GE(na.size(), 30u);
  EXPECT_GT(db.total_population(Region::kAsia),
            db.total_population(Region::kOceania));
  double sum = 0.0;
  for (int r = 0; r < kNumRegions; ++r) {
    sum += db.total_population(static_cast<Region>(r));
  }
  EXPECT_NEAR(sum, db.total_population(), 1e-9);
}

TEST(MetroDatabase, ThrowsOnBadId) {
  const MetroDatabase& db = MetroDatabase::world();
  EXPECT_THROW((void)db.metro(MetroId(9999)), NotFoundError);
  EXPECT_THROW((void)db.metro(MetroId{}), NotFoundError);
}

// ------------------------------------------------------ GeolocationModel

TEST(Geolocation, ExactFractionOneIsIdentity) {
  GeolocationConfig config;
  config.exact_fraction = 1.0;
  const GeolocationModel model(config, 42);
  const GeoPoint estimate = model.estimate(kLondon, 7);
  EXPECT_DOUBLE_EQ(estimate.lat_deg, kLondon.lat_deg);
  EXPECT_DOUBLE_EQ(estimate.lon_deg, kLondon.lon_deg);
}

TEST(Geolocation, DeterministicPerEntity) {
  const GeolocationModel model(GeolocationConfig{}, 42);
  const GeoPoint a = model.estimate(kLondon, 12345);
  const GeoPoint b = model.estimate(kLondon, 12345);
  EXPECT_EQ(a, b);
}

TEST(Geolocation, GrossErrorsLandFarAway) {
  GeolocationConfig config;
  config.exact_fraction = 0.0;
  config.gross_error_fraction = 1.0;
  const GeolocationModel model(config, 42);
  for (std::uint64_t key = 0; key < 50; ++key) {
    const Kilometers err =
        haversine_km(kLondon, model.estimate(kLondon, key));
    EXPECT_GE(err, config.gross_error_min_km * 0.99) << key;
  }
}

TEST(Geolocation, MostEntitiesExactAtDefaults) {
  const GeolocationModel model(GeolocationConfig{}, 1);
  int exact = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (haversine_km(kNewYork, model.estimate(kNewYork, key)) < 0.001) {
      ++exact;
    }
  }
  EXPECT_NEAR(exact, 900, 50);  // exact_fraction = 0.90
}

}  // namespace
}  // namespace acdn
