#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "latency/rtt_model.h"
#include "latency/timing_api.h"
#include "stats/quantile.h"

namespace acdn {
namespace {

TEST(RttModel, BaseRttComposition) {
  RttConfig config;
  config.km_per_rtt_ms = 100.0;
  config.per_as_hop_ms = 0.5;
  const RttModel model(config);
  // 1000 km path + 2 hops + 10 ms last mile = 10 + 1 + 10 = 21 ms.
  EXPECT_DOUBLE_EQ(model.base_rtt(1000.0, 2, 10.0), 21.0);
  EXPECT_DOUBLE_EQ(model.base_rtt(0.0, 0, 0.0), 0.0);
}

TEST(RttModel, BaseRttRejectsNegativeDistance) {
  const RttModel model;
  EXPECT_THROW((void)model.base_rtt(-1.0, 0, 5.0), ConfigError);
}

TEST(RttModel, ConfigValidation) {
  RttConfig bad;
  bad.km_per_rtt_ms = 0.0;
  EXPECT_THROW(RttModel{bad}, ConfigError);
  bad = RttConfig{};
  bad.congestion_prob = 1.5;
  EXPECT_THROW(RttModel{bad}, ConfigError);
  bad = RttConfig{};
  bad.diurnal_amplitude = 1.0;
  EXPECT_THROW(RttModel{bad}, ConfigError);
}

TEST(RttModel, SamplesCenterOnBase) {
  RttConfig config;
  config.congestion_prob = 0.0;  // isolate the jitter
  config.diurnal_amplitude = 0.0;
  const RttModel model(config);
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(model.sample(50.0, SimTime{0, 43200.0}, rng));
  }
  // Mean-corrected lognormal jitter: the mean should be very near base.
  EXPECT_NEAR(mean(samples), 50.0, 0.5);
  EXPECT_GT(stddev(samples), 2.0);
}

TEST(RttModel, DiurnalPeakRaisesLatency) {
  RttConfig config;
  config.congestion_prob = 0.0;
  config.jitter_sigma = 0.0;
  config.diurnal_amplitude = 0.10;
  config.peak_hour = 20.0;
  const RttModel model(config);
  Rng rng(1);
  const double at_peak = model.sample(100.0, SimTime{0, 20 * 3600.0}, rng);
  const double at_trough = model.sample(100.0, SimTime{0, 8 * 3600.0}, rng);
  EXPECT_NEAR(at_peak, 110.0, 1e-9);
  EXPECT_NEAR(at_trough, 90.0, 1e-9);
}

TEST(RttModel, CongestionCreatesHeavyTail) {
  RttConfig config;
  config.jitter_sigma = 0.0;
  config.diurnal_amplitude = 0.0;
  config.congestion_prob = 0.5;
  config.congestion_mean_ms = 100.0;
  const RttModel model(config);
  Rng rng(7);
  int spiked = 0;
  for (int i = 0; i < 10000; ++i) {
    if (model.sample(20.0, SimTime{0, 0.0}, rng) > 25.0) ++spiked;
  }
  EXPECT_NEAR(spiked, 5000 * 0.95, 300);  // ~half spike; most exceed +5ms
}

TEST(RttModel, LastMileMixRespectsShares) {
  // All-fiber mix draws low last-mile latencies; all-wireless draws high.
  LastMileMix fiber{1.0, 0.0, 0.0, 0.0};
  LastMileMix wireless{0.0, 0.0, 0.0, 1.0};
  Rng rng(3);
  std::vector<double> f, w;
  for (int i = 0; i < 2000; ++i) {
    f.push_back(RttModel::draw_last_mile(fiber, rng));
    w.push_back(RttModel::draw_last_mile(wireless, rng));
  }
  EXPECT_LT(median(f), 6.0);
  EXPECT_GT(median(w), 25.0);
}

// ------------------------------------------------------------ TimingModel

TEST(TimingModel, ResourceTimingIsExact) {
  const TimingModel model;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.observe(33.25, true, rng), 33.25);
}

TEST(TimingModel, PrimitiveTimingInflatesAndQuantizes) {
  TimingConfig config;
  config.primitive_resolution_ms = 1.0;
  const TimingModel model(config);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double observed = model.observe(30.0, false, rng);
    EXPECT_GE(observed, 30.0 - 0.5);  // never faster (modulo rounding)
    EXPECT_DOUBLE_EQ(observed, std::round(observed));  // quantized
  }
}

TEST(TimingModel, PrimitiveBiasIsPositiveOnAverage) {
  const TimingModel model;
  Rng rng(5);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += model.observe(40.0, false, rng);
  EXPECT_GT(sum / n, 41.0);  // overhead + scheduling delay
}

TEST(TimingModel, SupportRateMatchesConfig) {
  TimingConfig config;
  config.resource_timing_support = 0.75;
  const TimingModel model(config);
  Rng rng(11);
  int supported = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (model.supports_resource_timing(rng)) ++supported;
  }
  EXPECT_NEAR(supported, 7500, 200);
}

}  // namespace
}  // namespace acdn
