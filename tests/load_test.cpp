#include <gtest/gtest.h>

#include "common/error.h"
#include "load/fastroute.h"
#include "load/load_model.h"
#include "load/withdrawal.h"
#include "sim/world.h"

namespace acdn {
namespace {

class LoadTest : public ::testing::Test {
 protected:
  LoadTest()
      : world_(ScenarioConfig::small_test()),
        model_(world_.clients(), world_.router()) {}

  World world_;
  LoadModel model_;
};

TEST_F(LoadTest, BaselineConservesTraffic) {
  // Every routable client's volume lands on exactly one front-end.
  double routable_weight = 0.0;
  for (const Client24& c : world_.clients().clients()) {
    if (world_.router().route_anycast(c.access_as, c.metro).valid) {
      routable_weight += c.daily_queries;
    }
  }
  EXPECT_NEAR(model_.baseline().total_offered(), routable_weight, 1e-6);
}

TEST_F(LoadTest, BaselineWithinCapacity) {
  EXPECT_EQ(model_.baseline().overloaded_count(), 0u);
  for (std::size_t i = 0; i < model_.front_end_count(); ++i) {
    EXPECT_GT(model_.baseline().capacity[i], 0.0);
  }
}

TEST_F(LoadTest, WithdrawalShiftsNotDestroysLoad) {
  std::vector<bool> withdrawn(model_.front_end_count(), false);
  withdrawn[0] = true;
  const LoadMap after = model_.with_withdrawn(withdrawn);
  EXPECT_DOUBLE_EQ(after.offered[0], 0.0);
  EXPECT_NEAR(after.total_offered(), model_.baseline().total_offered(),
              1e-6);
}

TEST_F(LoadTest, NoWithdrawalMatchesBaseline) {
  const std::vector<bool> none(model_.front_end_count(), false);
  const LoadMap same = model_.with_withdrawn(none);
  for (std::size_t i = 0; i < model_.front_end_count(); ++i) {
    EXPECT_NEAR(same.offered[i], model_.baseline().offered[i], 1e-6) << i;
  }
}

TEST_F(LoadTest, FullWithdrawalDropsEverything) {
  const std::vector<bool> all(model_.front_end_count(), true);
  const LoadMap nothing = model_.with_withdrawn(all);
  EXPECT_DOUBLE_EQ(nothing.total_offered(), 0.0);
}

TEST_F(LoadTest, MaskSizeValidated) {
  const std::vector<bool> wrong(model_.front_end_count() + 1, false);
  EXPECT_THROW((void)model_.with_withdrawn(wrong), ConfigError);
}

TEST_F(LoadTest, HeadroomValidated) {
  LoadConfig bad;
  bad.headroom = 0.5;
  EXPECT_THROW(LoadModel(world_.clients(), world_.router(), bad),
               ConfigError);
}

// ------------------------------------------------------------- Withdrawal

TEST_F(LoadTest, GenerousCapacityStopsTheCascadeImmediately) {
  LoadConfig generous;
  generous.headroom = 10.0;
  const LoadModel roomy(world_.clients(), world_.router(), generous);
  const WithdrawalSimulator sim(roomy);
  const CascadeResult result = sim.cascade({FrontEndId(0)});
  EXPECT_EQ(result.total_withdrawn.size(), 1u);
  EXPECT_FALSE(result.collapsed);
  EXPECT_EQ(result.final_load.overloaded_count(), 0u);
}

TEST_F(LoadTest, TightCapacityCascades) {
  LoadConfig tight;
  tight.headroom = 1.02;  // running right at the edge
  const LoadModel hot(world_.clients(), world_.router(), tight);
  // Withdraw the most-loaded site.
  FrontEndId biggest(0);
  for (std::size_t i = 1; i < hot.front_end_count(); ++i) {
    if (hot.baseline().offered[i] >
        hot.baseline().offered[biggest.value]) {
      biggest = FrontEndId(static_cast<std::uint32_t>(i));
    }
  }
  const WithdrawalSimulator sim(hot);
  const CascadeResult result = sim.cascade({biggest});
  EXPECT_GT(result.total_withdrawn.size(), 1u);  // the cascade spread
  EXPECT_GE(result.rounds_to_stability(), 2);
}

TEST_F(LoadTest, CascadeRejectsInvalidFrontEnd) {
  const WithdrawalSimulator sim(model_);
  EXPECT_THROW((void)sim.cascade({FrontEndId(9999)}), ConfigError);
}

// --------------------------------------------------------------- FastRoute

TEST_F(LoadTest, PlanIsNoOpWhenHealthy) {
  const FastRouteController controller(model_);
  const SheddingPlan plan = controller.plan(model_.baseline());
  EXPECT_TRUE(plan.stabilized);
  EXPECT_TRUE(plan.directives.empty());
  EXPECT_DOUBLE_EQ(plan.moved_share(), 0.0);
}

TEST_F(LoadTest, SheddingConservesTraffic) {
  // Overload one site artificially and let the controller spread it.
  LoadMap start = model_.baseline();
  start.offered[0] = start.capacity[0] * 2.0;
  const double total = start.total_offered();
  const FastRouteController controller(model_);
  const SheddingPlan plan = controller.plan(start);
  EXPECT_NEAR(plan.final_load.total_offered(), total, 1e-6);
  EXPECT_FALSE(plan.directives.empty());
  // The hot site sheds; it never receives.
  for (const ShedDirective& d : plan.directives) {
    EXPECT_GT(d.queries_per_day, 0.0);
    EXPECT_NE(d.from, d.to);
  }
}

TEST_F(LoadTest, SheddingIsGradualPerRound) {
  LoadMap start = model_.baseline();
  start.offered[0] = start.capacity[0] * 3.0;
  SheddingConfig config;
  config.max_shed_per_round = 0.10;
  config.max_rounds = 1;  // a single round cannot fix a 3x overload
  const FastRouteController controller(model_, config);
  const SheddingPlan plan = controller.plan(start);
  EXPECT_FALSE(plan.stabilized);
  // At most 10% of the hot site's load moved in the single round.
  double moved_from_zero = 0.0;
  for (const ShedDirective& d : plan.directives) {
    if (d.from == FrontEndId(0)) moved_from_zero += d.queries_per_day;
  }
  EXPECT_LE(moved_from_zero, start.capacity[0] * 3.0 * 0.10 + 1e-9);
}

TEST_F(LoadTest, SheddingStabilizesModestOverload) {
  LoadMap start = model_.baseline();
  start.offered[0] = start.capacity[0] * 1.3;
  const FastRouteController controller(model_);
  const SheddingPlan plan = controller.plan(start);
  EXPECT_TRUE(plan.stabilized);
  EXPECT_EQ(plan.final_load.overloaded_count(), 0u);
}

TEST_F(LoadTest, TargetUtilizationValidated) {
  SheddingConfig bad;
  bad.target_utilization = 0.0;
  const FastRouteController controller(model_, bad);
  EXPECT_THROW((void)controller.plan(model_.baseline()), ConfigError);
}

}  // namespace
}  // namespace acdn
