#include <gtest/gtest.h>

#include "common/logging.h"

namespace acdn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, StreamingBuildsMessagesWithoutCrashing) {
  set_log_level(LogLevel::kDebug);
  // Output goes to stderr; the assertions here are about safe usage:
  // chaining, mixed types, and suppressed levels.
  Log(LogLevel::kInfo) << "built " << 42 << " things in " << 1.5 << "s";
  Log(LogLevel::kDebug) << "debug detail";
  set_log_level(LogLevel::kError);
  Log(LogLevel::kInfo) << "this must be suppressed cheaply";
  Log(LogLevel::kError) << "errors still flow";
  SUCCEED();
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  set_log_level(LogLevel::kOff);
  Log(LogLevel::kError) << "even errors are silent at kOff";
  SUCCEED();
}

}  // namespace
}  // namespace acdn
