#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"

namespace acdn {
namespace {

/// Every test runs against the process-global registry, so each starts
/// from a clean slate and leaves metrics disabled for its neighbors.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().reset();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    set_metrics_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsTest, CountersSumExactlyAcrossPoolThreads) {
  // Hammer one counter from the executor pool: per-thread shards must
  // fold to the exact total regardless of how chunks were scheduled.
  constexpr std::size_t kIters = 20000;
  Executor::global().parallel_for(0, kIters, 8, [](std::size_t) {
    metric_count("test.hammered");
    metric_count("test.weighted", 3);
  });
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.hammered"), kIters);
  EXPECT_EQ(snap.counters.at("test.weighted"), 3 * kIters);
}

TEST_F(MetricsTest, SnapshotOrderIsNameSortedAndDeterministic) {
  metric_count("zebra");
  metric_count("alpha");
  metric_count("middle");
  metric_observe("z.hist", 1.0);
  metric_observe("a.hist", 1.0);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();

  std::vector<std::string> names;
  for (const auto& [name, v] : snap.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
  std::vector<std::string> hists;
  for (const auto& [name, v] : snap.histograms) hists.push_back(name);
  EXPECT_EQ(hists, (std::vector<std::string>{"a.hist", "z.hist"}));
}

TEST_F(MetricsTest, HistogramTracksCountSumMinMaxAndQuantiles) {
  for (int i = 1; i <= 100; ++i) {
    metric_observe("test.latency", double(i));
  }
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const HistogramStats& h = snap.histograms.at("test.latency");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // P² estimates: near the true quantiles, not exact.
  EXPECT_NEAR(h.p50, 50.0, 5.0);
  EXPECT_NEAR(h.p95, 95.0, 5.0);
}

TEST_F(MetricsTest, HistogramMergesShardsByCountWeight) {
  // Two threads observing disjoint ranges: the merged quantiles must land
  // between the per-shard estimates, and count/sum/min/max are exact.
  // NOLINT-ACDN(raw-thread): pins registry behavior for foreign threads
  std::thread low([] {
    for (int i = 0; i < 1000; ++i) metric_observe("test.merge", 10.0);
  });
  // NOLINT-ACDN(raw-thread): second foreign thread for the shard merge
  std::thread high([] {
    for (int i = 0; i < 1000; ++i) metric_observe("test.merge", 30.0);
  });
  low.join();
  high.join();
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const HistogramStats& h = snap.histograms.at("test.merge");
  EXPECT_EQ(h.count, 2000u);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_GE(h.p50, 10.0);
  EXPECT_LE(h.p50, 30.0);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  metric_gauge("test.size", 5.0);
  metric_gauge("test.size", 9.0);
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.size"), 9.0);
}

TEST_F(MetricsTest, PhaseSpansNestIntoSlashPaths) {
  {
    PhaseSpan outer("train");
    EXPECT_EQ(PhaseSpan::current_path(), "train");
    {
      PhaseSpan inner("score");
      EXPECT_EQ(PhaseSpan::current_path(), "train/score");
    }
    EXPECT_EQ(PhaseSpan::current_path(), "train");
  }
  EXPECT_EQ(PhaseSpan::current_path(), "");

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.phases.at("train").count, 1u);
  EXPECT_EQ(snap.phases.at("train/score").count, 1u);
  EXPECT_GE(snap.phases.at("train").total_ms,
            snap.phases.at("train/score").total_ms);
}

TEST_F(MetricsTest, ScopedTimerRecordsOneSample) {
  { ScopedTimer t("test.scope_ms"); }
  { ScopedTimer t("test.scope_ms"); }
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.histograms.at("test.scope_ms").count, 2u);
  EXPECT_GE(snap.histograms.at("test.scope_ms").min, 0.0);
}

TEST_F(MetricsTest, DisabledCallsRecordNothing) {
  set_metrics_enabled(false);
  metric_count("test.off");
  metric_gauge("test.off_gauge", 1.0);
  metric_observe("test.off_hist", 1.0);
  { ScopedTimer t("test.off_timer"); }
  { PhaseSpan p("off_phase"); }
  EXPECT_TRUE(MetricsRegistry::global().snapshot().empty());
}

TEST_F(MetricsTest, ResetClearsEverything) {
  metric_count("test.c");
  metric_gauge("test.g", 1.0);
  metric_observe("test.h", 1.0);
  { PhaseSpan p("phase"); }
  EXPECT_FALSE(MetricsRegistry::global().snapshot().empty());
  MetricsRegistry::global().reset();
  EXPECT_TRUE(MetricsRegistry::global().snapshot().empty());
}

TEST_F(MetricsTest, CountsAreReproducibleAcrossRuns) {
  // The determinism contract for everything but wall-clock: identical
  // work produces identical counter values on a fresh registry.
  auto run = [] {
    MetricsRegistry::global().reset();
    Executor::global().parallel_for(0, 5000, 4, [](std::size_t i) {
      metric_count("test.repro");
      if (i % 3 == 0) metric_count("test.every_third");
    });
    return MetricsRegistry::global().snapshot();
  };
  const MetricsSnapshot a = run();
  const MetricsSnapshot b = run();
  EXPECT_EQ(a.counters, b.counters);
}

}  // namespace
}  // namespace acdn
