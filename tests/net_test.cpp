#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "net/allocator.h"
#include "net/ipv4.h"
#include "net/radix_trie.h"

namespace acdn {
namespace {

// ----------------------------------------------------------------- Ipv4

TEST(Ipv4, FormatAndParseRoundTrip) {
  const Ipv4Address a(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(Ipv4Address::parse("192.168.1.42"), a);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
}

TEST(Prefix, NormalizesHostBits) {
  const Prefix p(Ipv4Address(10, 1, 2, 200), 24);
  EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, Containment) {
  const Prefix p8(Ipv4Address(10, 0, 0, 0), 8);
  const Prefix p24(Ipv4Address(10, 1, 2, 0), 24);
  EXPECT_TRUE(p8.contains(p24));
  EXPECT_FALSE(p24.contains(p8));
  EXPECT_TRUE(p24.contains(Ipv4Address(10, 1, 2, 77)));
  EXPECT_FALSE(p24.contains(Ipv4Address(10, 1, 3, 77)));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Address(0)));
}

TEST(Prefix, Slash24Of) {
  EXPECT_EQ(Prefix::slash24_of(Ipv4Address(1, 2, 3, 99)),
            Prefix(Ipv4Address(1, 2, 3, 0), 24));
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 12);
  EXPECT_EQ(p->to_string(), "172.16.0.0/12");
  EXPECT_FALSE(Prefix::parse("172.16.0.0"));
  EXPECT_FALSE(Prefix::parse("172.16.0.0/33"));
  EXPECT_FALSE(Prefix::parse("bogus/8"));
}

// ------------------------------------------------------------ RadixTrie

TEST(RadixTrie, InsertFindErase) {
  RadixTrie<std::string> trie;
  const Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  EXPECT_TRUE(trie.insert(p, "ten"));
  EXPECT_FALSE(trie.insert(p, "ten-again"));  // replace
  ASSERT_NE(trie.find(p), nullptr);
  EXPECT_EQ(*trie.find(p), "ten-again");
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(p));
  EXPECT_FALSE(trie.erase(p));
  EXPECT_TRUE(trie.empty());
}

TEST(RadixTrie, LongestMatchPrefersMoreSpecific) {
  RadixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 8);
  trie.insert(Prefix(Ipv4Address(10, 1, 0, 0), 16), 16);
  trie.insert(Prefix(Ipv4Address(10, 1, 2, 0), 24), 24);

  auto m = trie.longest_match(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 24);

  m = trie.longest_match(Ipv4Address(10, 1, 9, 9));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 16);

  m = trie.longest_match(Ipv4Address(10, 200, 0, 1));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 8);

  EXPECT_FALSE(trie.longest_match(Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST(RadixTrie, DefaultRouteMatchesAll) {
  RadixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(0), 0), 0);
  const auto m = trie.longest_match(Ipv4Address(203, 0, 113, 5));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->second, 0);
}

TEST(RadixTrie, ExactFindDoesNotMatchCoveringPrefix) {
  RadixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 8);
  EXPECT_EQ(trie.find(Prefix(Ipv4Address(10, 1, 0, 0), 16)), nullptr);
}

TEST(RadixTrie, EraseKeepsSiblings) {
  RadixTrie<int> trie;
  const Prefix a(Ipv4Address(10, 0, 0, 0), 9);
  const Prefix b(Ipv4Address(10, 128, 0, 0), 9);
  trie.insert(a, 1);
  trie.insert(b, 2);
  EXPECT_TRUE(trie.erase(a));
  EXPECT_EQ(trie.find(a), nullptr);
  ASSERT_NE(trie.find(b), nullptr);
  EXPECT_EQ(*trie.find(b), 2);
}

TEST(RadixTrie, ForEachVisitsInAddressOrder) {
  RadixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(20, 0, 0, 0), 8), 2);
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4Address(10, 5, 0, 0), 16), 3);
  std::vector<int> order;
  trie.for_each([&](const Prefix&, int v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// Property sweep: insert many /24s, every one must longest-match itself.
class RadixTrieSweep : public ::testing::TestWithParam<int> {};

TEST_P(RadixTrieSweep, AllInsertedPrefixesSelfMatch) {
  const int count = GetParam();
  RadixTrie<int> trie;
  PrefixAllocator alloc = PrefixAllocator::client_pool();
  std::vector<Prefix> prefixes;
  for (int i = 0; i < count; ++i) {
    prefixes.push_back(alloc.allocate_slash24());
    trie.insert(prefixes.back(), i);
  }
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Ipv4Address inside(prefixes[static_cast<std::size_t>(i)]
                                 .address()
                                 .value() +
                             7);
    const auto m = trie.longest_match(inside);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m->second, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixTrieSweep,
                         ::testing::Values(1, 16, 256, 4096));

// ------------------------------------------------------- PrefixAllocator

TEST(PrefixAllocator, AllocatesDisjointSlash24s) {
  PrefixAllocator alloc(Prefix(Ipv4Address(192, 168, 0, 0), 16));
  EXPECT_EQ(alloc.capacity(), 256u);
  const Prefix first = alloc.allocate_slash24();
  const Prefix second = alloc.allocate_slash24();
  EXPECT_EQ(first, Prefix(Ipv4Address(192, 168, 0, 0), 24));
  EXPECT_EQ(second, Prefix(Ipv4Address(192, 168, 1, 0), 24));
  EXPECT_NE(first, second);
  EXPECT_FALSE(first.contains(second));
}

TEST(PrefixAllocator, ExhaustionThrows) {
  PrefixAllocator alloc(Prefix(Ipv4Address(192, 168, 0, 0), 23));
  EXPECT_EQ(alloc.capacity(), 2u);
  (void)alloc.allocate_slash24();
  (void)alloc.allocate_slash24();
  EXPECT_THROW((void)alloc.allocate_slash24(), Error);
}

TEST(PrefixAllocator, RejectsTooSmallPool) {
  EXPECT_THROW(PrefixAllocator(Prefix(Ipv4Address(10, 0, 0, 0), 25)),
               ConfigError);
}

}  // namespace
}  // namespace acdn
