#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/parallel.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    std::vector<std::atomic<int>> hits(101);
    parallel_for(3, 101, threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), (i >= 3 && i < 101) ? 1 : 0)
          << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  parallel_for(5, 5, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, 4, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  // NOLINT-ACDN(parallel-fp-accum): atomic integer add is commutative
  parallel_for(0, 3, 64, [&](std::size_t i) { sum += int(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1);
}

// ----------------------------------------------------- sim determinism

namespace {

/// Order-insensitive but content-sensitive fingerprint of a run.
std::pair<double, std::size_t> fingerprint(int threads) {
  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = threads;
  World world(config);
  Simulation sim(world);
  sim.run_days(2);
  double sum = 0.0;
  std::size_t count = 0;
  for (DayIndex d = 0; d < 2; ++d) {
    for (const BeaconMeasurement& m : sim.measurements().by_day(d)) {
      for (const auto& t : m.targets) {
        sum += t.rtt_ms * double(m.beacon_id % 1009 + 1);
        ++count;
      }
    }
    for (const PassiveLogEntry& e : sim.passive().by_day(d)) {
      sum += e.queries * double(e.front_end.value + 1);
      ++count;
    }
  }
  return {sum, count};
}

}  // namespace

TEST(ParallelSimulation, ThreadCountDoesNotChangeResults) {
  const auto serial = fingerprint(1);
  const auto parallel2 = fingerprint(2);
  const auto parallel8 = fingerprint(8);
  EXPECT_EQ(serial.second, parallel2.second);
  EXPECT_EQ(serial.second, parallel8.second);
  EXPECT_DOUBLE_EQ(serial.first, parallel2.first);
  EXPECT_DOUBLE_EQ(serial.first, parallel8.first);
}

TEST(ParallelSimulation, MeasurementsArriveInClientOrder) {
  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = 8;
  World world(config);
  Simulation sim(world);
  sim.run_day();
  // Merged in client order: beacon ids are non-decreasing in client.
  std::uint32_t prev_client = 0;
  for (const BeaconMeasurement& m : sim.measurements().by_day(0)) {
    EXPECT_GE(m.client.value, prev_client);
    prev_client = m.client.value;
  }
}

}  // namespace
}  // namespace acdn
