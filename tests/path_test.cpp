#include <gtest/gtest.h>

#include "routing/bgp.h"
#include "routing/path.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::kChicago;
using testfx::kDenver;
using testfx::kNewYork;
using testfx::kSeattle;

class PathTest : public ::testing::Test {
 protected:
  PathTest()
      : metros_(testfx::tiny_metros()),
        w_(testfx::tiny_world(metros_)),
        sim_(w_.graph, w_.cdn),
        table_(sim_.compute_anycast()),
        unfolder_(w_.graph, w_.cdn) {}

  MetroDatabase metros_;
  testfx::TinyWorld w_;
  BgpSimulator sim_;
  BgpRouteTable table_;
  PathUnfolder unfolder_;

  [[nodiscard]] std::vector<MetroId> anycast_announce() const {
    return w_.graph.as_node(w_.cdn).presence;
  }
};

TEST_F(PathTest, DirectPeerHandsOffAtSessionMetro) {
  // access_east in NewYork peers with the CDN at NewYork: zero-km segment,
  // ingress NewYork.
  const ForwardingPath path = unfolder_.unfold(
      w_.access_east, kNewYork, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  EXPECT_EQ(path.ingress_metro, kNewYork);
  EXPECT_DOUBLE_EQ(path.total_km, 0.0);
  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].as, w_.access_east);
  EXPECT_EQ(path.as_hops, 1);
}

TEST_F(PathTest, HotPotatoPicksNearestExit) {
  // access_east in Chicago: its CDN session is at NewYork, but the anycast
  // prefix is announced at Chicago too and the ISP has a PoP there, so the
  // symmetric-session rule lets it hand off locally.
  const ForwardingPath path = unfolder_.unfold(
      w_.access_east, kChicago, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  EXPECT_EQ(path.ingress_metro, kChicago);
  EXPECT_DOUBLE_EQ(path.total_km, 0.0);
}

TEST_F(PathTest, ProviderChainUnfoldsAcrossAses) {
  // access_west in Seattle routes via transit (provider). The transit
  // peers with the CDN and is present at Seattle: local ingress.
  const ForwardingPath path = unfolder_.unfold(
      w_.access_west, kSeattle, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  EXPECT_EQ(path.as_hops, 2);
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(path.segments[0].as, w_.access_west);
  EXPECT_EQ(path.segments[1].as, w_.transit);
  EXPECT_EQ(path.ingress_metro, kSeattle);
}

TEST_F(PathTest, UnicastAnnouncementForcesIngressNearFrontEnd) {
  // Prefix announced only at NewYork (the front-end's metro). A Seattle
  // client's traffic must ingress at NewYork regardless of path.
  const std::vector<MetroId> ny_only{kNewYork};
  const BgpRouteTable table = sim_.compute(ny_only);
  const ForwardingPath path =
      unfolder_.unfold(w_.access_west, kSeattle, table, ny_only);
  ASSERT_TRUE(path.valid);
  EXPECT_EQ(path.ingress_metro, kNewYork);
  // Someone carried the traffic across the country.
  EXPECT_GT(path.total_km, 3000.0);
}

TEST_F(PathTest, RemotePeeringPolicyOverridesHotPotato) {
  // Give access_east a cold-potato policy toward NewYork; its Chicago
  // clients' anycast traffic then hands off at NewYork, not locally.
  AsNode& east = w_.graph.as_node(w_.access_east);
  east.remote_peering_policy = true;
  east.preferred_handoffs = {kNewYork};

  const ForwardingPath path = unfolder_.unfold(
      w_.access_east, kChicago, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  EXPECT_EQ(path.ingress_metro, kNewYork);
  EXPECT_GT(path.total_km, 1000.0);  // Chicago -> NewYork haul
}

TEST_F(PathTest, RemotePeeringDoesNotApplyToTransitHandoffs) {
  // access_west with a preferred handoff at Denver still hands to its
  // *transit* at the nearest option, because the policy concerns only the
  // interconnection with the CDN.
  AsNode& west = w_.graph.as_node(w_.access_west);
  west.remote_peering_policy = true;
  west.preferred_handoffs = {kDenver};

  const ForwardingPath path = unfolder_.unfold(
      w_.access_west, kSeattle, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  ASSERT_GE(path.segments.size(), 1u);
  // First segment: Seattle -> Seattle handoff to transit (hot potato).
  EXPECT_EQ(path.segments[0].to, kSeattle);
}

TEST_F(PathTest, InvalidWhenUnreachable) {
  // A CDN with no links: unfold returns an invalid path.
  AsGraph graph(metros_);
  AsNode cdn;
  cdn.name = "Lonely";
  cdn.type = AsType::kCdn;
  cdn.presence = {kSeattle};
  AsNode isp;
  isp.name = "ISP";
  isp.type = AsType::kAccess;
  isp.presence = {kDenver};
  const AsId cdn_id = graph.add_as(cdn);
  const AsId isp_id = graph.add_as(isp);
  const BgpSimulator lonely_sim(graph, cdn_id);
  const std::vector<MetroId> seattle{kSeattle};
  const BgpRouteTable table = lonely_sim.compute(seattle);
  const PathUnfolder lonely_unfolder(graph, cdn_id);
  const ForwardingPath path =
      lonely_unfolder.unfold(isp_id, kDenver, table, seattle);
  EXPECT_FALSE(path.valid);
}

TEST_F(PathTest, TotalKmIsSumOfSegments) {
  const ForwardingPath path = unfolder_.unfold(
      w_.access_west, kDenver, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  Kilometers sum = 0.0;
  for (const PathSegment& seg : path.segments) sum += seg.km;
  EXPECT_DOUBLE_EQ(path.total_km, sum);
}

TEST_F(PathTest, AsPathAccessorMatchesSegments) {
  const ForwardingPath path = unfolder_.unfold(
      w_.access_west, kSeattle, table_, anycast_announce());
  ASSERT_TRUE(path.valid);
  const std::vector<AsId> as_path = path.as_path();
  ASSERT_EQ(as_path.size(), path.segments.size());
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    EXPECT_EQ(as_path[i], path.segments[i].as);
  }
}

}  // namespace
}  // namespace acdn
