// Cross-day pipeline determinism wall (sim/pipeline.h): the pipelined day
// loop must be byte-identical to the serial composition it replaced —
// Simulation::run_day per day, fig5_daily_prevalence over the finished
// store, per-row StreamingTrainer::observe — for every window size and
// thread count, with and without armed fault schedules. "Byte-identical"
// is checked the strong way: an order-sensitive digest of every stored
// measurement field, exact double equality on the figure-5 folds, the
// full trainer snapshot, per-point fault trigger counts, and the
// deterministic metrics counters (sim.*, join.*, fault.*, pipeline.* —
// executor.* scheduling counters are legitimately run-dependent and
// excluded).
//
// Suites: Pipeline* runs on the CI TSan leg (the overlap is real
// concurrency); PipelineChaos* also matches the chaos leg's `-R Chaos`.
// The arena lease guard and Executor::submit get their own focused tests
// here too — they are the two mechanisms the overlap leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/figures.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/executor.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/streaming.h"
#include "sim/pipeline.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

constexpr int kDays = 3;

std::uint64_t mix_into(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive digest of every stored measurement field (same scheme
/// as the chaos wall): equal digests mean byte-identical stores.
std::uint64_t store_digest(const MeasurementStore& store) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (DayIndex d = 0; d < store.days(); ++d) {
    for (const BeaconMeasurement& m : store.by_day(d)) {
      h = mix_into(h, m.beacon_id);
      h = mix_into(h, m.client.value);
      h = mix_into(h, m.ldns.value);
      h = mix_into(h, std::uint64_t(m.day));
      for (const BeaconMeasurement::Target& t : m.targets) {
        h = mix_into(h, t.anycast ? 1 : 0);
        h = mix_into(h, t.front_end.value);
        h = mix_into(h, std::bit_cast<std::uint64_t>(t.rtt_ms));
      }
    }
  }
  return h;
}

/// The schedule exercises the store fail point (whose per-row fold is the
/// join path the pipeline must not reorder) plus an upstream beacon drop.
FaultSchedule pipeline_schedule() {
  FaultSchedule schedule;
  schedule.seed = 0x91be11ull;
  schedule.rules = {
      {"beacon/http_fetch", FaultKind::kDrop, 0.10, 0, kFaultWindowOpen,
       0.0},
      {"beacon/store", FaultKind::kDrop, 0.05, 0, 1, 0.0},
      {"beacon/store", FaultKind::kDelay, 0.05, 2, kFaultWindowOpen, 7.5},
  };
  return schedule;
}

PredictorConfig predictor_config() {
  PredictorConfig config;
  config.min_measurements = 3;  // the small world has few samples per day
  return config;
}

Fig5Config fig5_config() { return Fig5Config{}; }

/// Counters whose totals the determinism contract covers. executor.*
/// (steal/async scheduling) and wall-clock phases are run-dependent.
std::map<std::string, std::uint64_t> deterministic_counters(
    const MetricsSnapshot& snapshot, bool include_pipeline) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : snapshot.counters) {
    const bool keep = name.rfind("sim.", 0) == 0 ||
                      name.rfind("join.", 0) == 0 ||
                      name.rfind("fault.", 0) == 0 ||
                      (include_pipeline && name.rfind("pipeline.", 0) == 0);
    if (keep) out.emplace(name, value);
  }
  return out;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<DayStats> days;
  std::vector<Fig5Day> prevalence;
  std::uint64_t observed = 0;
  std::vector<std::pair<std::uint32_t, Prediction>> predictions;
  std::map<std::string, std::uint64_t> trigger_counts;
  std::map<std::string, std::uint64_t> counters;
};

std::vector<std::pair<std::uint32_t, Prediction>> snapshot_of(
    const StreamingTrainer& trainer) {
  std::vector<std::pair<std::uint32_t, Prediction>> out;
  for (const auto& [group, prediction] : trainer.snapshot()) {
    out.emplace_back(group, prediction);
  }
  return out;
}

/// The pre-pipeline composition: run_day per day, then the batch figure-5
/// pass over the finished store, with the trainer fed row structs in day
/// order. This is the reference every pipelined variant must reproduce.
RunResult run_serial_reference(bool with_faults) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);

  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = 2;
  if (with_faults) config.faults = pipeline_schedule();
  World world(config);
  Simulation sim(world);
  StreamingTrainer trainer(predictor_config());

  RunResult run;
  for (int i = 0; i < kDays; ++i) run.days.push_back(sim.run_day());
  for (DayIndex d = 0; d < sim.measurements().days(); ++d) {
    for (const BeaconMeasurement& m : sim.measurements().by_day(d)) {
      trainer.observe(m);
    }
  }
  run.prevalence = fig5_daily_prevalence(sim.measurements(), fig5_config());
  run.digest = store_digest(sim.measurements());
  run.observed = trainer.observed();
  run.predictions = snapshot_of(trainer);
  run.trigger_counts = FailPointRegistry::global().trigger_counts();
  run.counters = deterministic_counters(MetricsRegistry::global().snapshot(),
                                        /*include_pipeline=*/false);

  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
  FailPointRegistry::global().disarm();
  return run;
}

RunResult run_pipelined(int window, int threads, bool with_faults,
                        bool include_pipeline_counters) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);

  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = threads;
  if (with_faults) config.faults = pipeline_schedule();
  World world(config);
  Simulation sim(world);

  PipelineOptions options;
  options.window = window;
  options.threads = threads;
  options.fig5 = fig5_config();
  options.predictor = predictor_config();
  ScenarioPipeline pipeline(sim, options);
  const PipelineResult result = pipeline.run_days(kDays);

  RunResult run;
  run.days = result.days;
  run.prevalence = result.prevalence;
  run.observed = result.observed;
  run.digest = store_digest(sim.measurements());
  run.predictions = snapshot_of(*pipeline.trainer());
  run.trigger_counts = FailPointRegistry::global().trigger_counts();
  run.counters = deterministic_counters(MetricsRegistry::global().snapshot(),
                                        include_pipeline_counters);

  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
  FailPointRegistry::global().disarm();
  return run;
}

void expect_equal(const RunResult& a, const RunResult& b,
                  const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.days.size(), b.days.size());
  for (std::size_t i = 0; i < a.days.size(); ++i) {
    EXPECT_EQ(a.days[i].day, b.days[i].day);
    EXPECT_EQ(a.days[i].beacons, b.days[i].beacons);
    EXPECT_EQ(a.days[i].passive_entries, b.days[i].passive_entries);
    EXPECT_EQ(a.days[i].clients_flapping, b.days[i].clients_flapping);
  }
  ASSERT_EQ(a.prevalence.size(), b.prevalence.size());
  for (std::size_t i = 0; i < a.prevalence.size(); ++i) {
    EXPECT_EQ(a.prevalence[i].day, b.prevalence[i].day);
    // Exact double equality: the fold replays the same arithmetic in the
    // same order, so there is no tolerance to grant.
    EXPECT_EQ(a.prevalence[i].fraction_above, b.prevalence[i].fraction_above);
  }
  EXPECT_EQ(a.observed, b.observed);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(a.predictions[i].first, b.predictions[i].first);
    EXPECT_EQ(a.predictions[i].second.anycast, b.predictions[i].second.anycast);
    EXPECT_EQ(a.predictions[i].second.front_end.value,
              b.predictions[i].second.front_end.value);
    EXPECT_EQ(a.predictions[i].second.predicted_ms,
              b.predictions[i].second.predicted_ms);
    EXPECT_EQ(a.predictions[i].second.anycast_ms,
              b.predictions[i].second.anycast_ms);
  }
  EXPECT_EQ(a.trigger_counts, b.trigger_counts);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(Pipeline, MatchesSerialComposition) {
  const RunResult serial = run_serial_reference(/*with_faults=*/false);
  const RunResult piped = run_pipelined(/*window=*/2, /*threads=*/2,
                                        /*with_faults=*/false,
                                        /*include_pipeline_counters=*/false);
  EXPECT_GT(serial.days.size(), 0u);
  EXPECT_GT(serial.observed, 0u);
  expect_equal(serial, piped, "serial vs window=2/threads=2");
}

TEST(Pipeline, ByteIdenticalAcrossWindowsAndThreads) {
  const RunResult baseline = run_pipelined(0, 1, /*with_faults=*/false,
                                           /*include_pipeline_counters=*/true);
  for (const int window : {1, 2, 4}) {
    for (const int threads : {1, 2, 8}) {
      const RunResult run = run_pipelined(window, threads, false, true);
      expect_equal(baseline, run,
                   "window=" + std::to_string(window) +
                       " threads=" + std::to_string(threads));
    }
  }
}

TEST(Pipeline, RingSurvivesMultipleRunDaysCalls) {
  MetricsRegistry::global().reset();
  ScenarioConfig config = ScenarioConfig::small_test();
  World world(config);
  Simulation sim(world);
  PipelineOptions options;
  options.window = 2;
  ScenarioPipeline pipeline(sim, options);

  // 2 + 1 days through one pipeline must equal 3 through another: the
  // ring cursor persists and run_days drains before returning.
  PipelineResult first = pipeline.run_days(2);
  const PipelineResult second = pipeline.run_days(1);
  ASSERT_EQ(first.days.size(), 2u);
  ASSERT_EQ(second.days.size(), 1u);
  first.days.insert(first.days.end(), second.days.begin(),
                    second.days.end());
  first.prevalence.insert(first.prevalence.end(), second.prevalence.begin(),
                          second.prevalence.end());
  const std::uint64_t split_digest = store_digest(sim.measurements());

  ScenarioConfig config2 = ScenarioConfig::small_test();
  World world2(config2);
  Simulation sim2(world2);
  ScenarioPipeline pipeline2(sim2, options);
  const PipelineResult whole = pipeline2.run_days(3);

  EXPECT_EQ(split_digest, store_digest(sim2.measurements()));
  ASSERT_EQ(first.days.size(), whole.days.size());
  for (std::size_t i = 0; i < whole.days.size(); ++i) {
    EXPECT_EQ(first.days[i].day, whole.days[i].day);
    EXPECT_EQ(first.days[i].beacons, whole.days[i].beacons);
  }
  ASSERT_EQ(first.prevalence.size(), whole.prevalence.size());
  for (std::size_t i = 0; i < whole.prevalence.size(); ++i) {
    EXPECT_EQ(first.prevalence[i].fraction_above,
              whole.prevalence[i].fraction_above);
  }
}

TEST(PipelineChaos, MatchesSerialCompositionUnderFaults) {
  const RunResult serial = run_serial_reference(/*with_faults=*/true);
  const RunResult piped = run_pipelined(2, 2, /*with_faults=*/true,
                                        /*include_pipeline_counters=*/false);
  // The schedule must actually bite, or this wall proves nothing.
  ASSERT_GT(serial.trigger_counts.at("beacon/store"), 0u);
  ASSERT_GT(serial.trigger_counts.at("beacon/http_fetch"), 0u);
  expect_equal(serial, piped, "faulted serial vs window=2/threads=2");
}

TEST(PipelineChaos, ByteIdenticalAcrossWindowsAndThreadsUnderFaults) {
  const RunResult baseline = run_pipelined(0, 1, /*with_faults=*/true,
                                           /*include_pipeline_counters=*/true);
  ASSERT_GT(baseline.trigger_counts.at("beacon/store"), 0u);
  for (const int window : {1, 2, 4}) {
    for (const int threads : {1, 2, 8}) {
      const RunResult run = run_pipelined(window, threads, true, true);
      expect_equal(baseline, run,
                   "window=" + std::to_string(window) +
                       " threads=" + std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------- arena leases

TEST(PipelineArenaLease, ReleaseThenReacquireIsClean) {
  ScratchArena arena;
  {
    ArenaLease<int> lease = arena.lease<int>("slot");
    lease->push_back(7);
    EXPECT_EQ(lease.get().size(), 1u);
  }  // lease released here
  ArenaLease<int> again = arena.lease<int>("slot");
  // lease<T> clears: same storage, fresh content.
  EXPECT_TRUE(again.get().empty());
  ArenaLease<int> other = arena.lease<int>("other-slot");  // disjoint id: fine
  other->push_back(1);
}

#if ACDN_DCHECK_ENABLED
TEST(PipelineArenaLeaseDeathTest, DoubleAcquireDies) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScratchArena arena;
  ArenaLease<int> held = arena.lease<int>("slot");
  EXPECT_DEATH((void)arena.lease<int>("slot"), "leased twice");
  EXPECT_DEATH((void)arena.buffer<int>("slot"), "acquired while leased");
}
#endif

// ------------------------------------------------------- Executor::submit

TEST(ExecutorSubmitTest, RunsTaskAndJoinReturnsAfterCompletion) {
  std::atomic<int> ran{0};
  TaskHandle handle = Executor::global().submit([&] { ran.fetch_add(1); });
  handle.join();
  EXPECT_EQ(ran.load(), 1);
  handle.join();  // joining a joined handle is a no-op
}

TEST(ExecutorSubmitTest, DestructorWaitsWithoutJoin) {
  std::atomic<int> ran{0};
  {
    TaskHandle handle = Executor::global().submit([&] { ran.fetch_add(1); });
  }  // destructor must wait: `ran` lives on this frame
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorSubmitTest, JoinRethrowsTaskException) {
  TaskHandle handle = Executor::global().submit(
      [] { throw std::runtime_error("async boom"); });
  EXPECT_THROW(handle.join(), std::runtime_error);
}

TEST(ExecutorSubmitTest, OverlapsWithBlockingParallelFor) {
  // The pipeline's exact shape: an async task in flight while the
  // submitting thread runs blocking batches. Must not deadlock at any
  // pool size (the async worker never owes the blocking batch chunks).
  std::atomic<std::uint64_t> async_sum{0};
  TaskHandle handle = Executor::global().submit([&] {
    for (int i = 0; i < 1000; ++i) async_sum.fetch_add(1);
  });
  std::atomic<std::uint64_t> sum{0};
  Executor::global().parallel_for(0, 10000, 4,
                                  [&](std::size_t) { sum.fetch_add(1); });
  handle.join();
  EXPECT_EQ(sum.load(), 10000u);
  EXPECT_EQ(async_sum.load(), 1000u);
}

TEST(ExecutorSubmitTest, ManyConcurrentHandles) {
  std::atomic<std::uint64_t> total{0};
  std::vector<TaskHandle> handles;
  handles.reserve(16);
  for (int i = 0; i < 16; ++i) {
    handles.push_back(
        Executor::global().submit([&total, i] { total.fetch_add(i + 1); }));
  }
  for (TaskHandle& h : handles) h.join();
  EXPECT_EQ(total.load(), 136u);  // 1 + 2 + ... + 16
}

}  // namespace
}  // namespace acdn
