#include <gtest/gtest.h>

#include "common/error.h"
#include "core/hybrid.h"
#include "sim/policy_lab.h"

namespace acdn {
namespace {

class PolicyLabTest : public ::testing::Test {
 protected:
  PolicyLabTest() : world_(ScenarioConfig::small_test()) {}
  World world_;
};

TEST_F(PolicyLabTest, RequiresStrategiesAndDays) {
  PolicyLab empty(world_);
  EXPECT_THROW((void)empty.run(1), ConfigError);

  const AnycastPolicy anycast;
  PolicyLab lab(world_);
  lab.add_strategy("anycast", anycast);
  EXPECT_THROW((void)lab.run(0), ConfigError);
}

TEST_F(PolicyLabTest, AnycastStrategyAnswersNoUnicast) {
  const AnycastPolicy anycast;
  PolicyLab lab(world_);
  lab.add_strategy("anycast", anycast);
  const auto outcomes = lab.run(2);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].name, "anycast");
  EXPECT_DOUBLE_EQ(outcomes[0].unicast_answer_share, 0.0);
  EXPECT_GT(outcomes[0].achieved_ms.count(), world_.clients().size());
  EXPECT_GT(outcomes[0].achieved_ms.quantile(0.5), 1.0);
}

TEST_F(PolicyLabTest, GeoStrategyAnswersAllUnicast) {
  const GeoClosestPolicy geo(world_.cdn().deployment(), world_.metros(),
                             world_.ldns(), world_.clients(),
                             world_.geolocation());
  PolicyLab lab(world_);
  lab.add_strategy("geo", geo);
  const auto outcomes = lab.run(1);
  EXPECT_DOUBLE_EQ(outcomes[0].unicast_answer_share, 1.0);
}

TEST_F(PolicyLabTest, TtlCachingReducesAuthoritativeLoad) {
  const AnycastPolicy anycast;
  PolicyLabConfig config;
  config.samples_per_client_day = 3;
  config.answer_ttl_seconds = 6 * 3600.0;  // long TTL: repeats mostly hit
  PolicyLab lab(world_, config);
  lab.add_strategy("anycast", anycast);
  const auto outcomes = lab.run(1);
  EXPECT_GT(outcomes[0].cache_hits, 0u);
  EXPECT_LT(outcomes[0].authoritative_queries,
            outcomes[0].cache_hits + outcomes[0].authoritative_queries);
}

TEST_F(PolicyLabTest, HybridSitsBetweenAnycastAndAllUnicast) {
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = 10;
  pc.grouping = Grouping::kEcsPrefix;
  HistoryPredictor predictor(pc);
  HybridPolicy::Config hc;
  hc.min_predicted_gain_ms = 5.0;
  const HybridPolicy hybrid(predictor, world_.clients(), hc);
  const AnycastPolicy anycast;

  PolicyLab lab(world_);
  lab.add_strategy("anycast", anycast);
  lab.add_strategy("hybrid", hybrid);
  lab.retrain_each_day(predictor);
  const auto outcomes = lab.run(3);
  ASSERT_EQ(outcomes.size(), 2u);
  const StrategyOutcome& hybrid_outcome = outcomes[1];
  // The hybrid answers some, but far from all, resolutions with unicast.
  EXPECT_GT(hybrid_outcome.unicast_answer_share, 0.0);
  EXPECT_LT(hybrid_outcome.unicast_answer_share, 0.5);
  // Most clients stay on anycast, so the medians nearly coincide. (Tail
  // quantiles of a 3-day small-world run are too noisy to compare — the
  // full-scale comparison lives in examples/compare_redirection.)
  EXPECT_NEAR(hybrid_outcome.achieved_ms.quantile(0.5),
              outcomes[0].achieved_ms.quantile(0.5),
              outcomes[0].achieved_ms.quantile(0.5) * 0.30);
}

}  // namespace
}  // namespace acdn
