#include <gtest/gtest.h>

#include "common/error.h"
#include "core/predictor.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::make_measurement;

PredictorConfig ecs_config(int min_measurements = 1) {
  PredictorConfig config;
  config.metric = PredictionMetric::kP25;
  config.min_measurements = min_measurements;
  config.grouping = Grouping::kEcsPrefix;
  return config;
}

TEST(Predictor, PicksLowestMetricTarget) {
  HistoryPredictor predictor(ecs_config());
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 20.0}, {1, 45.0}}));
  predictor.train(ms);
  const auto p = predictor.predict(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->anycast);
  EXPECT_EQ(p->front_end, FrontEndId(0));
  EXPECT_DOUBLE_EQ(p->predicted_ms, 20.0);
  ASSERT_TRUE(p->anycast_ms.has_value());
  EXPECT_DOUBLE_EQ(*p->anycast_ms, 30.0);
}

TEST(Predictor, SharedAggregatesMatchRowPathAndPinGrouping) {
  // One DayAggregates build can feed the predictor and the figure passes;
  // training on it must match training from the raw rows exactly.
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 20.0}, {1, 45.0}}));
  ms.push_back(make_measurement(2, 10, 0, 18.0, {{0, 25.0}}));

  HistoryPredictor from_rows(ecs_config());
  from_rows.train(ms);

  const DayAggregates agg = DayAggregates::build(ms, Grouping::kEcsPrefix);
  HistoryPredictor from_agg(ecs_config());
  from_agg.train(agg);

  ASSERT_EQ(from_agg.predictions().size(), from_rows.predictions().size());
  for (const auto& [group, p] : from_rows.predictions()) {
    const auto q = from_agg.predict(group);
    ASSERT_TRUE(q.has_value()) << "group " << group;
    EXPECT_EQ(q->anycast, p.anycast);
    EXPECT_EQ(q->front_end, p.front_end);
    EXPECT_DOUBLE_EQ(q->predicted_ms, p.predicted_ms);
  }

  // Aggregates built under the wrong grouping are rejected.
  const DayAggregates ldns = DayAggregates::build(ms, Grouping::kLdns);
  HistoryPredictor mismatched(ecs_config());
  EXPECT_THROW(mismatched.train(ldns), ConfigError);
}

TEST(Predictor, PicksAnycastWhenItIsBest) {
  HistoryPredictor predictor(ecs_config());
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 15.0, {{0, 20.0}}));
  predictor.train(ms);
  const auto p = predictor.predict(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->anycast);
}

TEST(Predictor, MinMeasurementGateExcludesThinTargets) {
  // FE0 has 1 sample (below gate of 2), anycast has 2: only anycast
  // qualifies even though FE0's sample is lower.
  HistoryPredictor predictor(ecs_config(2));
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 5.0}}));
  ms.push_back(make_measurement(1, 10, 0, 32.0, {}));
  predictor.train(ms);
  const auto p = predictor.predict(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->anycast);
}

TEST(Predictor, NoQualifyingDataMeansNoPrediction) {
  HistoryPredictor predictor(ecs_config(5));
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 10.0}}));
  predictor.train(ms);
  EXPECT_FALSE(predictor.predict(1).has_value());
  EXPECT_FALSE(predictor.predict(999).has_value());
}

TEST(Predictor, MetricQuantiles) {
  EXPECT_DOUBLE_EQ(metric_quantile(PredictionMetric::kP25), 0.25);
  EXPECT_DOUBLE_EQ(metric_quantile(PredictionMetric::kMedian), 0.50);
  EXPECT_DOUBLE_EQ(metric_quantile(PredictionMetric::kP75), 0.75);
  const std::vector<Milliseconds> samples{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(
      HistoryPredictor::metric_value(samples, PredictionMetric::kP25), 20.0);
  EXPECT_DOUBLE_EQ(
      HistoryPredictor::metric_value(samples, PredictionMetric::kMedian),
      30.0);
}

TEST(Predictor, P25MetricIgnoresUpperTail) {
  // Anycast has a clean p25 but an awful tail; FE0 is uniformly mediocre.
  // The p25 metric must still prefer anycast — exactly why the paper chose
  // low percentiles.
  HistoryPredictor predictor(ecs_config(4));
  std::vector<BeaconMeasurement> ms;
  const double anycast_samples[] = {10.0, 11.0, 12.0, 500.0};
  const double fe_samples[] = {25.0, 25.0, 25.0, 25.0};
  for (int i = 0; i < 4; ++i) {
    ms.push_back(
        make_measurement(1, 10, 0, anycast_samples[i], {{0, fe_samples[i]}}));
  }
  predictor.train(ms);
  const auto p = predictor.predict(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->anycast);
}

TEST(Predictor, LdnsGroupingPoolsClients) {
  PredictorConfig config = ecs_config(3);
  config.grouping = Grouping::kLdns;
  HistoryPredictor predictor(config);
  std::vector<BeaconMeasurement> ms;
  // Three clients of LDNS 10, one sample each: pooled they pass the gate.
  for (std::uint32_t c = 1; c <= 3; ++c) {
    ms.push_back(make_measurement(c, 10, 0, 30.0, {{0, 12.0}}));
  }
  predictor.train(ms);
  EXPECT_FALSE(predictor.predict(1).has_value());  // key is the LDNS id
  const auto p = predictor.predict(10);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->anycast);
  EXPECT_EQ(p->front_end, FrontEndId(0));
}

TEST(Predictor, RetrainReplacesMapping) {
  HistoryPredictor predictor(ecs_config());
  std::vector<BeaconMeasurement> day1;
  day1.push_back(make_measurement(1, 10, 0, 30.0, {{0, 10.0}}));
  predictor.train(day1);
  ASSERT_TRUE(predictor.predict(1).has_value());

  std::vector<BeaconMeasurement> day2;
  day2.push_back(make_measurement(2, 10, 1, 30.0, {{0, 10.0}}));
  predictor.train(day2);
  EXPECT_FALSE(predictor.predict(1).has_value());
  EXPECT_TRUE(predictor.predict(2).has_value());
}

TEST(Predictor, ConfigValidation) {
  PredictorConfig bad;
  bad.min_measurements = 0;
  EXPECT_THROW(HistoryPredictor{bad}, ConfigError);
}

}  // namespace
}  // namespace acdn
