// Cross-module property sweeps: invariants that must hold for *every*
// randomly generated world, parameterized over seeds (TEST_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "load/load_model.h"
#include "routing/bgp.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

class WorldProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  WorldProperties() {
    ScenarioConfig config = ScenarioConfig::small_test();
    config.seed = GetParam();
    world_ = std::make_unique<World>(config);
  }

  std::unique_ptr<World> world_;
};

TEST_P(WorldProperties, EveryClientHasAValidAnycastRoute) {
  for (const Client24& c : world_->clients().clients()) {
    const RouteResult route =
        world_->router().route_anycast(c.access_as, c.metro);
    ASSERT_TRUE(route.valid)
        << world_->graph().as_node(c.access_as).name << " @ "
        << world_->metros().metro(c.metro).name;
    EXPECT_TRUE(route.front_end.valid());
    EXPECT_GE(route.path_km, 0.0);
    EXPECT_GE(route.backbone_km, 0.0);
    EXPECT_GE(route.as_hops, 1);
    EXPECT_LE(route.as_hops, 8);
  }
}

TEST_P(WorldProperties, EveryAlternateCandidateAlsoUnfolds) {
  for (const Client24& c : world_->clients().clients()) {
    const std::size_t n =
        world_->router().anycast_candidate_count(c.access_as);
    for (std::size_t k = 0; k < std::min<std::size_t>(n, 3); ++k) {
      EXPECT_TRUE(
          world_->router().route_anycast(c.access_as, c.metro, k).valid)
          << "candidate " << k;
    }
  }
}

TEST_P(WorldProperties, EveryUnicastPrefixReachableFromEveryClientIsp) {
  // §3.1's measurement design requires every beacon candidate's unicast
  // /24 to be reachable from every client.
  std::set<std::pair<AsId, MetroId>> units;
  for (const Client24& c : world_->clients().clients()) {
    units.emplace(c.access_as, c.metro);
  }
  const auto& deployment = world_->cdn().deployment();
  for (const auto& [as, metro] : units) {
    for (const FrontEndSite& s : deployment.sites()) {
      const RouteResult route =
          world_->router().route_unicast(as, metro, s.id);
      ASSERT_TRUE(route.valid)
          << world_->graph().as_node(as).name << " -> " << s.name;
      EXPECT_EQ(route.front_end, s.id);
    }
  }
}

TEST_P(WorldProperties, UnicastIngressesNearTheFrontEnd) {
  // "forcing traffic to the prefix to ingress near the front-end" (§3.1):
  // the ingress is the announce metro itself.
  const auto& deployment = world_->cdn().deployment();
  int checked = 0;
  for (const Client24& c : world_->clients().clients()) {
    if (++checked > 50) break;
    for (const FrontEndSite& s : deployment.sites()) {
      const RouteResult route =
          world_->router().route_unicast(c.access_as, c.metro, s.id);
      ASSERT_TRUE(route.valid);
      EXPECT_EQ(route.ingress_metro, s.metro);
      EXPECT_DOUBLE_EQ(route.backbone_km, 0.0);
    }
  }
}

TEST_P(WorldProperties, AnycastRoutesAreValleyFree) {
  const BgpSimulator sim(world_->graph(), world_->cdn().as_id());
  const BgpRouteTable table = sim.compute_anycast();
  for (const AsNode& node : world_->graph().all_as()) {
    if (node.id == world_->cdn().as_id()) continue;
    const auto cands = table.candidates(node.id);
    for (std::size_t k = 0; k < cands.size(); ++k) {
      const std::vector<AsId> path = table.walk(node.id, k);
      bool descending = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        Neighbor::Kind kind = Neighbor::Kind::kPeer;
        for (const Neighbor& nb : world_->graph().neighbors(path[i])) {
          if (nb.as == path[i + 1]) kind = nb.kind;
        }
        if (descending) {
          ASSERT_EQ(kind, Neighbor::Kind::kCustomer)
              << node.name << " candidate " << k;
        }
        if (kind != Neighbor::Kind::kProvider) descending = true;
      }
    }
  }
}

TEST_P(WorldProperties, BeaconJoinIsLossless) {
  // With fetch loss disabled, every beacon execution's fetches must
  // survive the DNS/HTTP log join exactly.
  ScenarioConfig config = ScenarioConfig::small_test();
  config.seed = GetParam();
  config.beacon.fetch_loss_prob = 0.0;
  World world(config);
  Simulation sim(world);
  const DayStats stats = sim.run_day();
  std::size_t joined_targets = 0;
  for (const BeaconMeasurement& m : sim.measurements().by_day(0)) {
    joined_targets += m.targets.size();
  }
  EXPECT_EQ(sim.measurements().by_day(0).size(), stats.beacons);
  EXPECT_EQ(joined_targets, stats.beacons * 4);
}

TEST(BeaconIdPacking, HeavyClientPast4096BeaconsKeepsIdsUnique) {
  // Regression: beacon ids packed the per-client-day ordinal into 12 bits,
  // so a client running more than 4095 beacons in one day silently reused
  // ids and the DNS/HTTP join merged distinct beacons. Drive a tiny world
  // hot enough that every client executes thousands of beacons and check
  // the join stays lossless: one measurement per executed beacon.
  ScenarioConfig config = ScenarioConfig::small_test();
  config.workload.total_client_24s = 10;
  // ~125k queries/day/client with a deliberately thin tail (alpha 50), at
  // 5% sampling: ~6.2k beacons per client-day, comfortably past 4096 and
  // nowhere near the 20-bit ordinal field.
  config.workload.base_daily_queries = 250000.0;
  config.workload.volume_pareto_alpha = 50.0;
  config.beacon.fetch_loss_prob = 0.0;
  World world(config);
  Simulation sim(world);
  const DayStats stats = sim.run_day();

  std::uint64_t heaviest = 0;
  std::map<std::uint32_t, std::uint64_t> per_client;
  for (const BeaconMeasurement& m : sim.measurements().by_day(0)) {
    heaviest = std::max(heaviest, ++per_client[m.client.value]);
  }
  ASSERT_GT(heaviest, 4096u)
      << "world not hot enough to exercise the wide ordinal field";
  EXPECT_EQ(sim.measurements().by_day(0).size(), stats.beacons);
}

TEST_P(WorldProperties, FetchLossOnlyShrinksTheJoin) {
  // With loss enabled (the default), joined measurements never exceed the
  // executed beacons, and each carries between 0-lost and all targets.
  World& world = *world_;
  Simulation sim(world);
  const DayStats stats = sim.run_day();
  const auto joined = sim.measurements().by_day(0);
  EXPECT_LE(joined.size(), stats.beacons);
  // Loss is rare: the overwhelming majority of beacons survive intact.
  std::size_t complete = 0;
  for (const BeaconMeasurement& m : joined) {
    EXPECT_GE(m.targets.size(), 1u);
    EXPECT_LE(m.targets.size(), 4u);
    if (m.targets.size() == 4u) ++complete;
  }
  if (!joined.empty()) {
    EXPECT_GT(double(complete) / double(joined.size()), 0.85);
  }
}

TEST_P(WorldProperties, RttsAreBoundedAndPositive) {
  Rng rng = world_->fork_rng("prop-rtt");
  int checked = 0;
  for (const Client24& c : world_->clients().clients()) {
    if (++checked > 30) break;
    const auto rtts = world_->beacon().measure_all_candidates(
        c, SimTime{0, 43200.0}, rng);
    for (Milliseconds ms : rtts) {
      EXPECT_GT(ms, 0.5);     // at least some last-mile latency
      EXPECT_LT(ms, 3000.0);  // and nothing absurd
    }
  }
}

TEST_P(WorldProperties, LoadIsConservedUnderAnyWithdrawal) {
  const LoadModel model(world_->clients(), world_->router());
  Rng rng = world_->fork_rng("prop-load");
  std::vector<bool> withdrawn(model.front_end_count(), false);
  // Withdraw a random third of the sites.
  for (std::size_t i = 0; i < withdrawn.size(); ++i) {
    withdrawn[i] = rng.bernoulli(1.0 / 3.0);
  }
  if (std::all_of(withdrawn.begin(), withdrawn.end(),
                  [](bool w) { return w; })) {
    withdrawn[0] = false;
  }
  const LoadMap after = model.with_withdrawn(withdrawn);
  EXPECT_NEAR(after.total_offered(), model.baseline().total_offered(), 1e-6);
  for (std::size_t i = 0; i < withdrawn.size(); ++i) {
    if (withdrawn[i]) {
      EXPECT_DOUBLE_EQ(after.offered[i], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldProperties,
                         ::testing::Values(1, 7, 23, 99, 1234));

}  // namespace
}  // namespace acdn
