// Property tests for common/radix.h against std::stable_sort.
//
// The pipeline's determinism contract leans on radix_sort being *stable*
// — that is what lets serial and chunk+merge parallel paths produce
// byte-identical output without seq tie-breaker columns. Every test here
// therefore compares against std::stable_sort on (key, original index)
// pairs, not just sortedness.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/radix.h"
#include "common/rng.h"

namespace acdn {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t mask) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(rng.next_u64() & mask);
  }
  return keys;
}

/// Checks radix_sort_pairs against std::stable_sort on an index payload:
/// equal keys must keep their original relative order.
void check_stable_pairs(std::vector<std::uint64_t> keys, int threads) {
  std::vector<std::uint32_t> payload(keys.size());
  std::iota(payload.begin(), payload.end(), 0u);

  std::vector<std::pair<std::uint64_t, std::uint32_t>> expected;
  expected.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expected.emplace_back(keys[i], payload[i]);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;  // key only: ties keep order
                   });

  radix_sort_pairs(std::span<std::uint64_t>(keys),
                   std::span<std::uint32_t>(payload), threads);
  ASSERT_EQ(keys.size(), expected.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], expected[i].first) << "key mismatch at " << i;
    ASSERT_EQ(payload[i], expected[i].second)
        << "stability violated at " << i;
  }
}

void check_keys_only(std::vector<std::uint64_t> keys, int threads) {
  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort(std::span<std::uint64_t>(keys), threads);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, EmptyAndSingle) {
  check_keys_only({}, 1);
  check_keys_only({42}, 1);
  check_stable_pairs({}, 4);
  check_stable_pairs({7}, 4);
}

TEST(RadixSort, RandomKeysMatchStdSort) {
  for (const std::size_t n : {2u, 3u, 100u, 4096u, 70'000u}) {
    check_keys_only(
        random_keys(n, 0x1234 + n, std::numeric_limits<std::uint64_t>::max()),
        1);
  }
}

TEST(RadixSort, DuplicateHeavyKeysStaySorted) {
  // Only 16 distinct keys over 50k elements: most byte columns trivial.
  check_keys_only(random_keys(50'000, 99, 0xf), 1);
  check_stable_pairs(random_keys(50'000, 99, 0xf), 1);
}

TEST(RadixSort, AlreadySortedInput) {
  std::vector<std::uint64_t> keys(40'000);
  std::iota(keys.begin(), keys.end(), 0ull);
  check_keys_only(keys, 1);
  check_stable_pairs(keys, 2);
}

TEST(RadixSort, ReverseSortedInput) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 40'000; i-- > 0;) keys.push_back(i);
  check_keys_only(keys, 1);
  check_stable_pairs(keys, 2);
}

TEST(RadixSort, AllEqualKeys) {
  std::vector<std::uint64_t> keys(10'000, 0xdeadbeefull);
  check_stable_pairs(keys, 1);
  check_stable_pairs(keys, 8);
}

TEST(RadixSort, HighBytesOnly) {
  // Keys that differ only in the top byte exercise the skip-trivial-
  // column logic for every low byte.
  check_keys_only(random_keys(10'000, 7, 0xff00000000000000ull), 1);
  check_stable_pairs(random_keys(10'000, 7, 0xff00000000000000ull), 1);
}

TEST(RadixSort, PairsPermutationIsStableAcrossPayloadTypes) {
  // Packed-struct payload, as the pipeline uses (columnar row indices).
  struct Row {
    std::uint32_t index;
    float weight;
  };
  Rng rng(5);
  const std::size_t n = 20'000;
  std::vector<std::uint64_t> keys = random_keys(n, 21, 0xffff);
  std::vector<std::uint64_t> keys2 = keys;
  std::vector<Row> rows(n);
  std::vector<std::uint32_t> index(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i] = Row{static_cast<std::uint32_t>(i), float(i) * 0.5f};
    index[i] = static_cast<std::uint32_t>(i);
  }
  radix_sort_pairs(std::span<std::uint64_t>(keys), std::span<Row>(rows), 1);
  radix_sort_pairs(std::span<std::uint64_t>(keys2),
                   std::span<std::uint32_t>(index), 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rows[i].index, index[i]) << "payload permutation diverged";
  }
}

TEST(RadixSort, ThreadCountInvariance) {
  // The headline determinism property: identical output for any thread
  // count, serial path included, because stable output is a pure
  // function of the input.
  const std::vector<std::uint64_t> keys = random_keys(150'000, 31337, 0xffff);
  std::vector<std::uint32_t> base_payload(keys.size());
  std::iota(base_payload.begin(), base_payload.end(), 0u);

  std::vector<std::uint64_t> ref_keys = keys;
  std::vector<std::uint32_t> ref_payload = base_payload;
  radix_sort_pairs(std::span<std::uint64_t>(ref_keys),
                   std::span<std::uint32_t>(ref_payload), 1);

  for (const int threads : {2, 3, 8}) {
    std::vector<std::uint64_t> k = keys;
    std::vector<std::uint32_t> p = base_payload;
    radix_sort_pairs(std::span<std::uint64_t>(k),
                     std::span<std::uint32_t>(p), threads);
    EXPECT_EQ(k, ref_keys) << "threads=" << threads;
    EXPECT_EQ(p, ref_payload) << "threads=" << threads;
  }
}

TEST(RadixSort, ArenaScratchReuse) {
  ScratchArena arena;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint64_t> keys =
        random_keys(30'000, 17 + std::uint64_t(round), 0xffffff);
    std::vector<std::uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    radix_sort(std::span<std::uint64_t>(keys), 2, &arena);
    EXPECT_EQ(keys, expected);
  }
  const std::size_t warm = arena.capacity_bytes();
  std::vector<std::uint64_t> keys = random_keys(30'000, 3, 0xffffff);
  radix_sort(std::span<std::uint64_t>(keys), 2, &arena);
  EXPECT_EQ(arena.capacity_bytes(), warm) << "arena should stay warm";
}

}  // namespace
}  // namespace acdn
