#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "common/error.h"
#include "report/ascii_chart.h"
#include "report/run_report.h"
#include "report/series.h"
#include "report/shape_check.h"

namespace acdn {
namespace {

Series step_series() {
  return Series{"s", {{0.0, 0.1}, {10.0, 0.5}, {20.0, 1.0}}};
}

TEST(Series, StepInterpolation) {
  const Series s = step_series();
  EXPECT_DOUBLE_EQ(sample_series(s, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(sample_series(s, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(sample_series(s, 9.9), 0.1);
  EXPECT_DOUBLE_EQ(sample_series(s, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(sample_series(s, 100.0), 1.0);
}

TEST(Figure, CsvExportHasHeaderAndUnionRows) {
  Figure fig("t", "x", "y");
  fig.add_series(step_series());
  fig.add_series(Series{"other", {{5.0, 0.2}}});
  const std::string path = ::testing::TempDir() + "acdn_fig_test.csv";
  fig.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,s,other");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);  // union of x: 0, 5, 10, 20
  std::remove(path.c_str());
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  Figure fig("my chart", "ms", "cdf");
  fig.add_series(step_series());
  ChartOptions options;
  options.width = 40;
  options.height = 8;
  const std::string chart = render_chart(fig, options);
  EXPECT_NE(chart.find("my chart"), std::string::npos);
  EXPECT_NE(chart.find("[a] s"), std::string::npos);
  EXPECT_NE(chart.find('a'), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesWideRanges) {
  Figure fig("log", "km", "cdf");
  fig.add_series(Series{"d", {{64.0, 0.2}, {8192.0, 1.0}}});
  ChartOptions options;
  options.log_x = true;
  options.x_min = 64;
  options.x_max = 8192;
  EXPECT_FALSE(render_chart(fig, options).empty());
}

TEST(AsciiChart, RejectsTinyCanvas) {
  Figure fig("x", "x", "y");
  fig.add_series(step_series());
  ChartOptions options;
  options.width = 4;
  options.height = 2;
  EXPECT_THROW((void)render_chart(fig, options), ConfigError);
}

TEST(ShapeReport, PassAndFailAccounting) {
  ShapeReport report("test");
  report.check("in band", 5.0, 0.0, 10.0);
  report.note("just info", 42.0);
  EXPECT_TRUE(report.all_pass());
  report.check("out of band", 50.0, 0.0, 10.0);
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.checks().size(), 3u);
  EXPECT_FALSE(report.print());
}

TEST(ShapeReport, BoundaryValuesPass) {
  ShapeReport report("boundaries");
  report.check("lower edge", 0.0, 0.0, 1.0);
  report.check("upper edge", 1.0, 0.0, 1.0);
  EXPECT_TRUE(report.all_pass());
}

// ------------------------------------------------------------ RunManifest

RunManifest sample_manifest() {
  RunManifest m;
  m.tool = "run_scenario";
  m.config_digest = "00aabbccddeeff11";
  m.seed = 42;
  m.days = 7;
  m.start_date = "2015-04-01";
  m.end_date = "2015-04-07";
  m.outputs = {"out_a.csv", "out_b.csv"};
  m.metrics.counters["sim.beacons"] = 1711;
  m.metrics.counters["join.orphan_dns"] = 103;
  m.metrics.gauges["dns.cache.size"] = 12.0;
  HistogramStats h;
  h.count = 3;
  h.sum = 6.0;
  h.min = 1.0;
  h.max = 3.0;
  h.p50 = 2.0;
  m.metrics.histograms["sim.day_ms"] = h;
  m.metrics.phases["sim.day/join"] = PhaseStats{3, 1.5, 0.6};
  return m;
}

TEST(RunManifest, WritesWellFormedJson) {
  const std::string path =
      ::testing::TempDir() + "acdn_manifest_test.json";
  write_run_manifest(sample_manifest(), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Structural spot checks (no JSON parser in the test deps): key fields,
  // escaping-safe quoting, balanced braces.
  EXPECT_NE(text.find("\"tool\": \"run_scenario\""), std::string::npos);
  EXPECT_NE(text.find("\"config_digest\": \"00aabbccddeeff11\""),
            std::string::npos);
  EXPECT_NE(text.find("\"sim.beacons\": 1711"), std::string::npos);
  EXPECT_NE(text.find("\"out_b.csv\""), std::string::npos);
  EXPECT_NE(text.find("\"sim.day/join\""), std::string::npos);
  const auto opens = std::count(text.begin(), text.end(), '{');
  const auto closes = std::count(text.begin(), text.end(), '}');
  EXPECT_EQ(opens, closes);
  std::remove(path.c_str());
}

TEST(RunManifest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_run_manifest(sample_manifest(), "/nonexistent-dir/m.json"),
               Error);
}

TEST(RunManifest, TableRendersEverySection) {
  const std::string table = format_metrics_table(sample_manifest().metrics);
  EXPECT_NE(table.find("counters"), std::string::npos);
  EXPECT_NE(table.find("sim.beacons"), std::string::npos);
  EXPECT_NE(table.find("gauges"), std::string::npos);
  EXPECT_NE(table.find("histograms"), std::string::npos);
  EXPECT_NE(table.find("phases"), std::string::npos);
  EXPECT_NE(table.find("sim.day/join"), std::string::npos);
  EXPECT_EQ(format_metrics_table(MetricsSnapshot{}),
            "(no metrics recorded)\n");
}

}  // namespace
}  // namespace acdn
