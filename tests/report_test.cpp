#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"

namespace acdn {
namespace {

Series step_series() {
  return Series{"s", {{0.0, 0.1}, {10.0, 0.5}, {20.0, 1.0}}};
}

TEST(Series, StepInterpolation) {
  const Series s = step_series();
  EXPECT_DOUBLE_EQ(sample_series(s, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(sample_series(s, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(sample_series(s, 9.9), 0.1);
  EXPECT_DOUBLE_EQ(sample_series(s, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(sample_series(s, 100.0), 1.0);
}

TEST(Figure, CsvExportHasHeaderAndUnionRows) {
  Figure fig("t", "x", "y");
  fig.add_series(step_series());
  fig.add_series(Series{"other", {{5.0, 0.2}}});
  const std::string path = ::testing::TempDir() + "acdn_fig_test.csv";
  fig.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,s,other");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);  // union of x: 0, 5, 10, 20
  std::remove(path.c_str());
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  Figure fig("my chart", "ms", "cdf");
  fig.add_series(step_series());
  ChartOptions options;
  options.width = 40;
  options.height = 8;
  const std::string chart = render_chart(fig, options);
  EXPECT_NE(chart.find("my chart"), std::string::npos);
  EXPECT_NE(chart.find("[a] s"), std::string::npos);
  EXPECT_NE(chart.find('a'), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesWideRanges) {
  Figure fig("log", "km", "cdf");
  fig.add_series(Series{"d", {{64.0, 0.2}, {8192.0, 1.0}}});
  ChartOptions options;
  options.log_x = true;
  options.x_min = 64;
  options.x_max = 8192;
  EXPECT_FALSE(render_chart(fig, options).empty());
}

TEST(AsciiChart, RejectsTinyCanvas) {
  Figure fig("x", "x", "y");
  fig.add_series(step_series());
  ChartOptions options;
  options.width = 4;
  options.height = 2;
  EXPECT_THROW((void)render_chart(fig, options), ConfigError);
}

TEST(ShapeReport, PassAndFailAccounting) {
  ShapeReport report("test");
  report.check("in band", 5.0, 0.0, 10.0);
  report.note("just info", 42.0);
  EXPECT_TRUE(report.all_pass());
  report.check("out of band", 50.0, 0.0, 10.0);
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.checks().size(), 3u);
  EXPECT_FALSE(report.print());
}

TEST(ShapeReport, BoundaryValuesPass) {
  ShapeReport report("boundaries");
  report.check("lower edge", 0.0, 0.0, 1.0);
  report.check("upper edge", 1.0, 0.0, 1.0);
  EXPECT_TRUE(report.all_pass());
}

}  // namespace
}  // namespace acdn
