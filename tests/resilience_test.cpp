// Degraded-mode pipeline tests (fault-injection tentpole): the predictor's
// gate-empty fallback to anycast, DegradedPipeline's stale carry-forward
// with its explicit staleness counter, and the golden manifest fragment
// that records both.
#include "core/resilience.h"

#include <gtest/gtest.h>

#include <string>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "report/run_report.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

ResilienceConfig lenient_config() {
  ResilienceConfig config;
  config.predictor.min_measurements = 1;
  config.evaluator.min_eval_samples = 1;
  config.evaluator.epsilon_ms = 0.0;
  return config;
}

TEST(DegradedPipeline, HealthyDaysTrainAndEvaluateFresh) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(2);

  DegradedPipeline pipeline(world.clients(), world.ldns(), lenient_config());
  const auto outcome = pipeline.step(sim.measurements(), 0, 1);
  EXPECT_TRUE(outcome.trained_fresh);
  EXPECT_TRUE(outcome.evaluated_fresh);
  EXPECT_EQ(outcome.staleness, 0);
  EXPECT_GT(outcome.summary.evaluated, 0u);
  EXPECT_EQ(pipeline.stale_train_days(), 0u);
  EXPECT_EQ(pipeline.stale_eval_days(), 0u);
}

TEST(DegradedPipeline, EmptyDaysCarryLastHealthySummaryForward) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(2);

  DegradedPipeline pipeline(world.clients(), world.ldns(), lenient_config());
  const auto fresh = pipeline.step(sim.measurements(), 0, 1);
  ASSERT_TRUE(fresh.evaluated_fresh);

  // Days 5/6 never ran: both unhealthy. The previous mapping is kept and
  // the last healthy summary is carried forward, explicitly stale.
  const auto stale1 = pipeline.step(sim.measurements(), 5, 6);
  EXPECT_FALSE(stale1.trained_fresh);
  EXPECT_FALSE(stale1.evaluated_fresh);
  EXPECT_EQ(stale1.staleness, 1);
  EXPECT_EQ(stale1.summary.evaluated, fresh.summary.evaluated);
  EXPECT_EQ(stale1.summary.improvement_p50.count(),
            fresh.summary.improvement_p50.count());

  const auto stale2 = pipeline.step(sim.measurements(), 5, 6);
  EXPECT_EQ(stale2.staleness, 2);
  EXPECT_EQ(pipeline.stale_train_days(), 2u);
  EXPECT_EQ(pipeline.stale_eval_days(), 2u);

  // A healthy pair resets the staleness run (the totals keep counting).
  const auto recovered = pipeline.step(sim.measurements(), 0, 1);
  EXPECT_TRUE(recovered.evaluated_fresh);
  EXPECT_EQ(recovered.staleness, 0);
  EXPECT_EQ(pipeline.stale_eval_days(), 2u);
}

TEST(DegradedPipeline, NoMappingYetMeansStaleEvenOnHealthyEvalDay) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(2);

  DegradedPipeline pipeline(world.clients(), world.ldns(), lenient_config());
  // Training day is empty and no mapping exists yet: nothing to evaluate
  // with, even though the evaluation day itself has data.
  const auto outcome = pipeline.step(sim.measurements(), 7, 1);
  EXPECT_FALSE(outcome.trained_fresh);
  EXPECT_FALSE(outcome.evaluated_fresh);
  EXPECT_EQ(outcome.staleness, 1);
  EXPECT_EQ(outcome.summary.evaluated, 0u);
}

TEST(DegradedPipeline, StalenessMetricsLandInRegistry) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);

  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(2);
  DegradedPipeline pipeline(world.clients(), world.ldns(), lenient_config());
  (void)pipeline.step(sim.measurements(), 0, 1);
  (void)pipeline.step(sim.measurements(), 5, 6);
  (void)pipeline.step(sim.measurements(), 5, 6);

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("resilience.stale_train_days"), 2u);
  EXPECT_EQ(snap.counters.at("resilience.stale_eval_days"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("resilience.staleness"), 2.0);

  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}

TEST(GateEmptyFallback, ImpossibleGateLeavesEveryGroupOnAnycast) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(2);

  PredictorConfig config;
  config.min_measurements = 1000000;  // nothing can qualify
  HistoryPredictor predictor(config);
  predictor.train(sim.measurements().columns(0));

  // Every group with data fell below the gate: no mapping entries, the
  // gate-empty counter owns them all, and predict() sends consumers to
  // anycast (nullopt).
  EXPECT_EQ(predictor.predictions().size(), 0u);
  EXPECT_GT(predictor.gate_empty_groups(), 0u);

  // Evaluation still works — every /24 is scored as anycast.
  PredictionEvaluator::Config eval_config;
  eval_config.min_eval_samples = 1;
  const PredictionEvaluator evaluator(world.clients(), world.ldns(),
                                      eval_config);
  const auto outcomes =
      evaluator.evaluate(predictor, sim.measurements().columns(1));
  ASSERT_GT(outcomes.size(), 0u);
  for (const EvalOutcome& o : outcomes) {
    EXPECT_TRUE(o.predicted_anycast);
    EXPECT_DOUBLE_EQ(o.improvement_p50, 0.0);
  }
}

TEST(GateEmptyFallback, LooseGateRestoresUnicastPredictions) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_days(1);

  PredictorConfig config;
  config.min_measurements = 1;
  HistoryPredictor predictor(config);
  predictor.train(sim.measurements().columns(0));
  EXPECT_GT(predictor.predictions().size(), 0u);
  EXPECT_EQ(predictor.gate_empty_groups(), 0u);
}

TEST(ManifestFragment, GoldenFaultInjectionSection) {
  FaultInjectionRecord record;
  record.armed = true;
  record.seed = 7;
  record.rules = {
      {"dns/resolve", FaultKind::kError, 0.25, 1, 3, 0.0},
      {"beacon/store", FaultKind::kCorrupt, 0.5, 0, kFaultWindowOpen, 2.5},
  };
  record.trigger_counts = {{"beacon/store", 4}, {"dns/resolve", 12}};
  record.stale_train_days = 2;
  record.stale_eval_days = 3;

  const std::string expected =
      "  \"fault_injection\": {\n"
      "    \"armed\": true,\n"
      "    \"seed\": 7,\n"
      "    \"rules\": [\n"
      "      {\"point\": \"dns/resolve\", \"kind\": \"error\", "
      "\"probability\": 0.25, \"first_day\": 1, \"last_day\": 3, "
      "\"magnitude\": 0},\n"
      "      {\"point\": \"beacon/store\", \"kind\": \"corrupt\", "
      "\"probability\": 0.5, \"first_day\": 0, \"last_day\": -1, "
      "\"magnitude\": 2.5}\n"
      "    ],\n"
      "    \"trigger_counts\": {\n"
      "      \"beacon/store\": 4,\n"
      "      \"dns/resolve\": 12\n"
      "    },\n"
      "    \"stale_train_days\": 2,\n"
      "    \"stale_eval_days\": 3\n"
      "  }\n";
  EXPECT_EQ(format_fault_injection(record, 1), expected);
}

TEST(ManifestFragment, DisarmedRecordIsExplicit) {
  FailPointRegistry::global().disarm();
  const FaultInjectionRecord record = FaultInjectionRecord::from_registry();
  EXPECT_FALSE(record.armed);
  EXPECT_TRUE(record.rules.empty());
  const std::string text = format_fault_injection(record, 0);
  EXPECT_NE(text.find("\"armed\": false"), std::string::npos);
  EXPECT_NE(text.find("\"rules\": []"), std::string::npos);
}

}  // namespace
}  // namespace acdn
