// End-to-end integration tests: a small world simulated over several days,
// checked for cross-module invariants rather than per-module behavior.
#include <gtest/gtest.h>

#include <set>

#include "analysis/figures.h"
#include "common/error.h"
#include "core/evaluator.h"
#include "core/predictor.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

class SimIntegration : public ::testing::Test {
 protected:
  SimIntegration() : world_(ScenarioConfig::small_test()), sim_(world_) {
    sim_.run_days(3);
  }

  World world_;
  Simulation sim_;
};

TEST_F(SimIntegration, EveryDayProducesData) {
  for (DayIndex d = 0; d < 3; ++d) {
    EXPECT_FALSE(sim_.measurements().by_day(d).empty()) << d;
    EXPECT_FALSE(sim_.passive().by_day(d).empty()) << d;
  }
  EXPECT_EQ(sim_.next_day(), 3);
}

TEST_F(SimIntegration, PassiveLogsCoverActiveClientsEveryDay) {
  for (DayIndex d = 0; d < 3; ++d) {
    std::set<ClientId> seen;
    for (const PassiveLogEntry& e : sim_.passive().by_day(d)) {
      seen.insert(e.client);
      EXPECT_GT(e.queries, 0.0);
      EXPECT_TRUE(e.front_end.valid());
    }
    // Exactly the clients the activity model marks active appear (light
    // /24s blink in and out of the logs).
    std::size_t active = 0;
    for (const Client24& c : world_.clients().clients()) {
      if (world_.schedule().is_active(c, d, world_.config().seed)) ++active;
    }
    EXPECT_EQ(seen.size(), active);
    EXPECT_GT(seen.size(), world_.clients().size() / 2);
  }
}

TEST_F(SimIntegration, BeaconMeasurementsAreWellFormed) {
  std::size_t with_anycast = 0;
  std::size_t with_unicast = 0;
  std::size_t total = 0;
  for (const BeaconMeasurement& m : sim_.measurements().by_day(0)) {
    ++total;
    EXPECT_LE(m.targets.size(), 4u);
    EXPECT_GE(m.targets.size(), 1u);
    if (m.anycast_ms()) ++with_anycast;
    if (m.best_unicast()) ++with_unicast;
    for (const auto& t : m.targets) {
      EXPECT_GT(t.rtt_ms, 0.0);
      EXPECT_LT(t.rtt_ms, 3000.0);
    }
    // The joined LDNS matches the client's actual resolver.
    EXPECT_EQ(world_.clients().client(m.client).ldns, m.ldns);
    EXPECT_GE(m.hour, 0.0);
    EXPECT_LT(m.hour, 24.0);
  }
  ASSERT_GT(total, 0u);
  // Fetch loss is rare: nearly every joined beacon has both sides.
  EXPECT_GT(double(with_anycast) / double(total), 0.95);
  EXPECT_GT(double(with_unicast) / double(total), 0.95);
}

TEST_F(SimIntegration, AnycastFrontEndsMatchRoutingOracle) {
  // The front-end in any passive entry must be producible by the router
  // for that client's routing unit (some candidate index).
  const auto day0 = sim_.passive().by_day(0);
  for (std::size_t i = 0; i < std::min<std::size_t>(day0.size(), 100); ++i) {
    const PassiveLogEntry& e = day0[i];
    const Client24& c = world_.clients().client(e.client);
    bool reachable = false;
    const std::size_t n =
        world_.router().anycast_candidate_count(c.access_as);
    for (std::size_t k = 0; k < n; ++k) {
      if (world_.router().route_anycast(c.access_as, c.metro, k).front_end ==
          e.front_end) {
        reachable = true;
        break;
      }
    }
    EXPECT_TRUE(reachable) << "client " << e.client.value;
  }
}

TEST_F(SimIntegration, AnycastIsNearOptimalForMostRequests) {
  DistributionBuilder diff = fig3_anycast_minus_best_unicast(
      sim_.measurements().by_day(0), world_.clients(), std::nullopt);
  ASSERT_FALSE(diff.empty());
  // Median request: anycast within a few ms of the best measured unicast.
  EXPECT_LT(std::abs(diff.quantile(0.5)), 8.0);
  // But a tail of poor anycast requests exists.
  EXPECT_GT(1.0 - diff.fraction_at_most(10.0), 0.02);
}

TEST_F(SimIntegration, PredictionPipelineRunsEndToEnd) {
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = 5;
  pc.grouping = Grouping::kEcsPrefix;
  HistoryPredictor predictor(pc);
  predictor.train(sim_.measurements().by_day(1));
  EXPECT_GT(predictor.predictions().size(), 0u);

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns());
  const auto outcomes =
      evaluator.evaluate(predictor, sim_.measurements().by_day(2));
  EXPECT_GT(outcomes.size(), 0u);
  const EvalSummary summary = evaluator.summarize(outcomes);
  EXPECT_GE(summary.fraction_improved_p50, 0.0);
  EXPECT_LE(summary.fraction_improved_p50 + summary.fraction_worse_p50, 1.0);
}

TEST_F(SimIntegration, WeekLongChurnIsBounded) {
  Simulation week(world_);  // continues from day 3 world state
  // Note: run a fresh simulation over a fresh world for exact semantics.
  World fresh(ScenarioConfig::small_test());
  Simulation fresh_sim(fresh);
  fresh_sim.run_days(7);
  const auto switched = fig7_cumulative_switched(fresh_sim.passive(), 7);
  ASSERT_EQ(switched.size(), 7u);
  for (std::size_t i = 1; i < switched.size(); ++i) {
    EXPECT_GE(switched[i] + 1e-12, switched[i - 1]);  // cumulative
  }
  EXPECT_GT(switched.back(), 0.0);   // some churn exists
  EXPECT_LT(switched.back(), 0.6);   // most clients are stable
}

TEST(SimDeterminism, SameSeedSameOutput) {
  auto fingerprint = [](std::uint64_t seed) {
    ScenarioConfig config = ScenarioConfig::small_test();
    config.seed = seed;
    World world(config);
    Simulation sim(world);
    sim.run_days(2);
    double sum = 0.0;
    std::size_t count = 0;
    for (DayIndex d = 0; d < 2; ++d) {
      for (const BeaconMeasurement& m : sim.measurements().by_day(d)) {
        for (const auto& t : m.targets) {
          sum += t.rtt_ms;
          ++count;
        }
      }
    }
    return std::make_pair(sum, count);
  };
  const auto a = fingerprint(7);
  const auto b = fingerprint(7);
  EXPECT_EQ(a.second, b.second);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  const auto c = fingerprint(8);
  EXPECT_NE(a.first, c.first);
}

TEST(SimScenario, ValidationCatchesBadKnobs) {
  ScenarioConfig bad = ScenarioConfig::small_test();
  bad.flap_traffic_share = 1.5;
  EXPECT_THROW(World{bad}, ConfigError);
  bad = ScenarioConfig::small_test();
  bad.max_route_alternatives = 0;
  EXPECT_THROW(World{bad}, ConfigError);
  bad = ScenarioConfig::small_test();
  bad.workload.total_client_24s = 0;
  EXPECT_THROW(World{bad}, ConfigError);
}

TEST(SimScenario, DigestIdentifiesWorldShapeModuloSeed) {
  const ScenarioConfig base = ScenarioConfig::small_test();
  const std::string digest = base.digest();
  EXPECT_EQ(digest.size(), 16u);  // zero-padded 64-bit hex
  EXPECT_EQ(digest, ScenarioConfig::small_test().digest());  // stable

  // Seed and thread count don't shape the world: both are excluded.
  ScenarioConfig reseeded = base;
  reseeded.seed = 999;
  reseeded.simulation_threads = 7;
  EXPECT_EQ(reseeded.digest(), digest);

  // Any world-shaping knob changes the digest.
  ScenarioConfig more_clients = base;
  more_clients.workload.total_client_24s += 1;
  EXPECT_NE(more_clients.digest(), digest);
  ScenarioConfig other_rtt = base;
  other_rtt.rtt.jitter_sigma += 0.01;
  EXPECT_NE(other_rtt.digest(), digest);
  EXPECT_NE(ScenarioConfig::paper_default().digest(), digest);
}

}  // namespace
}  // namespace acdn
