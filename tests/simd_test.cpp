// Bit-identity sweep for common/simd.h.
//
// The SIMD policy (docs/ARCHITECTURE.md, "Batch kernels & SIMD policy")
// requires every vector kernel to be *bit-identical* to its scalar
// reference: golden digests must not depend on which dispatch target
// ran. This suite runs every kernel on every compiled-in dispatch
// target over randomized and edge-case inputs — boundary lanes,
// non-multiple-of-width lengths — and compares raw bits, not values
// (EXPECT_EQ on doubles would let -0.0 == +0.0 slip through). NaN/inf
// are excluded by the kernels' contracts and never generated here.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "geo/geo_point.h"
#include "latency/rtt_model.h"

namespace acdn {
namespace {

using simd::Dispatch;

/// Lengths that cover empty inputs, sub-width tails, exact widths for
/// 2/4-lane kernels, width+1 boundaries, and a bulk run.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 1001};

void expect_bits_eq(std::span<const double> got, std::span<const double> want,
                    const char* what, Dispatch d) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " lane " << i << " differs on " << simd::name(d)
        << ": " << got[i] << " vs " << want[i];
  }
}

TEST(SimdDispatch, ActiveIsAvailable) {
  bool found = false;
  for (Dispatch d : simd::available()) {
    if (d == simd::active()) found = true;
  }
  EXPECT_TRUE(found) << "active() must come from available()";
  // Scalar is always first so sweeps can use index 0 as the reference.
  ASSERT_FALSE(simd::available().empty());
  EXPECT_EQ(simd::available().front(), Dispatch::kScalar);
}

TEST(SimdSweep, IsSortedU64) {
  Rng rng(11);
  for (const std::size_t n : kLengths) {
    // Sorted (with duplicates), and one violation planted at every
    // position — this covers violations in boundary lanes and tails.
    std::vector<std::uint64_t> keys(n);
    std::uint64_t v = 0;
    for (auto& k : keys) k = (v += rng.next_u64() % 3);
    for (std::size_t flip = 0; flip <= n; ++flip) {
      std::vector<std::uint64_t> probe = keys;
      if (flip < n && flip > 0) probe[flip] = probe[flip - 1] / 2;
      const bool want = simd::is_sorted_u64_at(
          Dispatch::kScalar, std::span<const std::uint64_t>(probe));
      for (Dispatch d : simd::available()) {
        EXPECT_EQ(simd::is_sorted_u64_at(
                      d, std::span<const std::uint64_t>(probe)),
                  want)
            << "n=" << n << " flip=" << flip << " on " << simd::name(d);
      }
    }
  }
}

TEST(SimdSweep, RunStartsU64) {
  Rng rng(12);
  for (const std::size_t n : kLengths) {
    // Duplicate-heavy sorted keys: realistic group-by input shape.
    std::vector<std::uint64_t> keys(n);
    std::uint64_t v = 1000;
    for (auto& k : keys) k = (v += (rng.next_u64() % 4 == 0) ? 1 : 0);
    std::vector<std::uint32_t> want;
    simd::run_starts_u64_at(Dispatch::kScalar,
                            std::span<const std::uint64_t>(keys), want);
    for (Dispatch d : simd::available()) {
      std::vector<std::uint32_t> got;
      simd::run_starts_u64_at(d, std::span<const std::uint64_t>(keys), got);
      EXPECT_EQ(got, want) << "n=" << n << " on " << simd::name(d);
    }
  }
}

TEST(SimdSweep, PackGroupTarget) {
  Rng rng(13);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint32_t> group(n);
    std::vector<std::uint8_t> anycast(n);
    std::vector<std::uint32_t> fe(n);
    for (std::size_t i = 0; i < n; ++i) {
      group[i] = static_cast<std::uint32_t>(rng.next_u64());
      anycast[i] = static_cast<std::uint8_t>(rng.next_u64() % 2);
      // Mostly valid 31-bit ids; every 7th lane tests overflow
      // detection, every anycast lane carries the invalid sentinel the
      // real column holds (and must be ignored).
      fe[i] = static_cast<std::uint32_t>(rng.next_u64()) & 0x7fffffffu;
      if (i % 7 == 3) fe[i] |= 0x80000000u;
      if (anycast[i] != 0) fe[i] = 0xffffffffu;
    }
    std::vector<std::uint64_t> want(n);
    const std::uint32_t want_overflow = simd::pack_group_target_at(
        Dispatch::kScalar, group, anycast, fe, std::span<std::uint64_t>(want));
    for (Dispatch d : simd::available()) {
      std::vector<std::uint64_t> got(n);
      const std::uint32_t overflow = simd::pack_group_target_at(
          d, group, anycast, fe, std::span<std::uint64_t>(got));
      EXPECT_EQ(got, want) << "n=" << n << " on " << simd::name(d);
      EXPECT_EQ(overflow, want_overflow)
          << "n=" << n << " on " << simd::name(d);
    }
  }
}

TEST(SimdSweep, BaseRttBatch) {
  Rng rng(14);
  for (const std::size_t n : kLengths) {
    std::vector<double> km(n);
    std::vector<std::int32_t> hops(n);
    std::vector<double> last_mile(n);
    for (std::size_t i = 0; i < n; ++i) {
      km[i] = rng.uniform(0.0, 20'000.0);
      hops[i] = static_cast<std::int32_t>(rng.uniform_int(0, 12));
      last_mile[i] = rng.uniform(0.0, 60.0);
    }
    std::vector<double> want(n);
    simd::base_rtt_batch_at(Dispatch::kScalar, km, hops, last_mile, 100.0,
                            0.5, std::span<double>(want));
    for (Dispatch d : simd::available()) {
      std::vector<double> got(n);
      simd::base_rtt_batch_at(d, km, hops, last_mile, 100.0, 0.5,
                              std::span<double>(got));
      expect_bits_eq(got, want, "base_rtt", d);
    }
  }
}

TEST(SimdSweep, DiurnalBatch) {
  Rng rng(15);
  for (const std::size_t n : kLengths) {
    std::vector<double> hour(n);
    for (auto& h : hour) h = rng.uniform(0.0, 24.0);
    std::vector<double> want(n);
    simd::diurnal_batch_at(Dispatch::kScalar, hour, 20.0, 0.06,
                           std::span<double>(want));
    for (Dispatch d : simd::available()) {
      std::vector<double> got(n);
      simd::diurnal_batch_at(d, hour, 20.0, 0.06, std::span<double>(got));
      expect_bits_eq(got, want, "diurnal", d);
    }
  }
}

constexpr double kTwoEarthRadiusKm = 2.0 * 6371.0088;

TEST(SimdSweep, HaversineBatch) {
  Rng rng(16);
  for (const std::size_t n : kLengths) {
    std::vector<double> lat(n);
    std::vector<double> lon(n);
    for (std::size_t i = 0; i < n; ++i) {
      lat[i] = rng.uniform(-90.0, 90.0);
      lon[i] = rng.uniform(-180.0, 180.0);
    }
    // Edge lanes: the antipode (clamp path, h ~ 1) and the origin
    // itself (h = 0).
    if (n >= 2) {
      lat[0] = -48.8566;
      lon[0] = 2.3522 - 180.0;
      lat[1] = 48.8566;
      lon[1] = 2.3522;
    }
    std::vector<double> want(n);
    simd::haversine_batch_at(Dispatch::kScalar, 48.8566, 2.3522, lat, lon,
                             kTwoEarthRadiusKm, std::span<double>(want));
    for (Dispatch d : simd::available()) {
      std::vector<double> got(n);
      simd::haversine_batch_at(d, 48.8566, 2.3522, lat, lon,
                               kTwoEarthRadiusKm, std::span<double>(got));
      expect_bits_eq(got, want, "haversine", d);
    }
  }
}

TEST(SimdSweep, HaversinePairsBatch) {
  Rng rng(17);
  for (const std::size_t n : kLengths) {
    std::vector<double> lat_a(n);
    std::vector<double> lon_a(n);
    std::vector<double> lat_b(n);
    std::vector<double> lon_b(n);
    for (std::size_t i = 0; i < n; ++i) {
      lat_a[i] = rng.uniform(-90.0, 90.0);
      lon_a[i] = rng.uniform(-180.0, 180.0);
      lat_b[i] = rng.uniform(-90.0, 90.0);
      lon_b[i] = rng.uniform(-180.0, 180.0);
    }
    std::vector<double> want(n);
    simd::haversine_pairs_batch_at(Dispatch::kScalar, lat_a, lon_a, lat_b,
                                   lon_b, kTwoEarthRadiusKm,
                                   std::span<double>(want));
    for (Dispatch d : simd::available()) {
      std::vector<double> got(n);
      simd::haversine_pairs_batch_at(d, lat_a, lon_a, lat_b, lon_b,
                                     kTwoEarthRadiusKm,
                                     std::span<double>(got));
      expect_bits_eq(got, want, "haversine_pairs", d);
    }
  }
}

// ---- Scalar references must equal the models they replace, bit for
// ---- bit: this is the link that keeps golden digests safe.

TEST(SimdReference, HaversineMatchesGeoPoint) {
  Rng rng(18);
  const GeoPoint origin{37.7749, -122.4194};
  const std::size_t n = 257;
  std::vector<double> lat(n);
  std::vector<double> lon(n);
  for (std::size_t i = 0; i < n; ++i) {
    lat[i] = rng.uniform(-90.0, 90.0);
    lon[i] = rng.uniform(-180.0, 180.0);
  }
  std::vector<double> batch(n);
  simd::haversine_batch(origin.lat_deg, origin.lon_deg, lat, lon,
                        kTwoEarthRadiusKm, std::span<double>(batch));
  for (std::size_t i = 0; i < n; ++i) {
    const Kilometers direct = haversine_km(origin, GeoPoint{lat[i], lon[i]});
    ASSERT_EQ(std::bit_cast<std::uint64_t>(batch[i]),
              std::bit_cast<std::uint64_t>(direct))
        << "batch haversine diverged from haversine_km at " << i;
  }
}

TEST(SimdReference, BaseRttMatchesRttModel) {
  Rng rng(19);
  RttConfig config;
  const RttModel model(config);
  const std::size_t n = 129;
  std::vector<double> km(n);
  std::vector<std::int32_t> hops(n);
  std::vector<double> last_mile(n);
  for (std::size_t i = 0; i < n; ++i) {
    km[i] = rng.uniform(0.0, 15'000.0);
    hops[i] = static_cast<std::int32_t>(rng.uniform_int(0, 9));
    last_mile[i] = rng.uniform(0.0, 40.0);
  }
  std::vector<double> batch(n);
  simd::base_rtt_batch(km, hops, last_mile, config.km_per_rtt_ms,
                       config.per_as_hop_ms, std::span<double>(batch));
  for (std::size_t i = 0; i < n; ++i) {
    const Milliseconds direct =
        model.base_rtt(km[i], hops[i], last_mile[i]);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(batch[i]),
              std::bit_cast<std::uint64_t>(direct));
  }
}

TEST(SimdReference, DiurnalMatchesRttModel) {
  Rng rng(20);
  RttConfig config;
  const RttModel model(config);
  const std::size_t n = 100;
  std::vector<double> hour(n);
  std::vector<double> seconds(n);
  for (std::size_t i = 0; i < n; ++i) {
    seconds[i] = rng.uniform(0.0, 86'400.0);
    hour[i] = seconds[i] / 3600.0;  // exactly SimTime::hour_of_day()
  }
  std::vector<double> batch(n);
  simd::diurnal_batch(hour, config.peak_hour, config.diurnal_amplitude,
                      std::span<double>(batch));
  for (std::size_t i = 0; i < n; ++i) {
    const double direct =
        model.diurnal_factor(SimTime{0, seconds[i]});
    ASSERT_EQ(std::bit_cast<std::uint64_t>(batch[i]),
              std::bit_cast<std::uint64_t>(direct));
  }
}

}  // namespace
}  // namespace acdn
