#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "stats/distribution.h"
#include "stats/p2.h"
#include "stats/quantile.h"

namespace acdn {
namespace {

// --------------------------------------------------------------- quantile

TEST(Quantile, SingleValue) {
  const double v[] = {42.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 42.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, UnsortedInputIsHandled) {
  const double v[] = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)quantile(empty, 0.5), ConfigError);
  const double v[] = {1.0};
  EXPECT_THROW((void)quantile(v, 1.5), ConfigError);
}

TEST(Quantile, BatchMatchesSingle) {
  const double v[] = {9.0, 1.0, 7.0, 3.0, 5.0};
  const double qs[] = {0.25, 0.5, 0.75};
  const auto batch = quantiles(v, qs);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_DOUBLE_EQ(batch[0], quantile(v, 0.25));
  EXPECT_DOUBLE_EQ(batch[1], quantile(v, 0.5));
  EXPECT_DOUBLE_EQ(batch[2], quantile(v, 0.75));
}

TEST(WeightedQuantile, HeavyWeightDominates) {
  const double values[] = {1.0, 100.0};
  const double weights[] = {1.0, 99.0};
  EXPECT_DOUBLE_EQ(weighted_quantile(values, weights, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(values, weights, 0.005), 1.0);
}

TEST(WeightedQuantile, UniformWeightsMatchOrderStatistics) {
  const double values[] = {3.0, 1.0, 2.0};
  const double weights[] = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_quantile(values, weights, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(values, weights, 0.34), 2.0);
}

TEST(WeightedQuantile, RejectsMismatchedSizes) {
  const double values[] = {1.0, 2.0};
  const double weights[] = {1.0};
  EXPECT_THROW((void)weighted_quantile(values, weights, 0.5), ConfigError);
}

TEST(Stats, MeanStddevCov) {
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
  EXPECT_NEAR(coefficient_of_variation(v), 2.138 / 5.0, 0.001);
}

// --------------------------------------------------------------------- P2

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
  p2.add(1.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), ConfigError);
  EXPECT_THROW(P2Quantile(1.0), ConfigError);
}

TEST(P2Quantile, ValueWithoutSamplesThrows) {
  P2Quantile p2(0.5);
  EXPECT_THROW((void)p2.value(), ConfigError);
}

// Property sweep: the P2 estimate must track the exact quantile within a
// few percent of the distribution's scale for several (q, distribution)
// combinations.
struct P2Case {
  double q;
  int distribution;  // 0 uniform, 1 lognormal, 2 exponential
};

class P2Accuracy : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2Accuracy, TracksExactQuantile) {
  const P2Case c = GetParam();
  Rng rng(1234 + c.distribution);
  P2Quantile p2(c.q);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double x = 0.0;
    switch (c.distribution) {
      case 0: x = rng.uniform(0.0, 100.0); break;
      case 1: x = rng.lognormal(3.0, 0.5); break;
      default: x = rng.exponential(0.05); break;
    }
    p2.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, c.q);
  const double scale = quantile(all, 0.9) - quantile(all, 0.1);
  EXPECT_NEAR(p2.value(), exact, 0.05 * scale)
      << "q=" << c.q << " dist=" << c.distribution;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2Accuracy,
    ::testing::Values(P2Case{0.25, 0}, P2Case{0.5, 0}, P2Case{0.75, 0},
                      P2Case{0.25, 1}, P2Case{0.5, 1}, P2Case{0.9, 1},
                      P2Case{0.25, 2}, P2Case{0.5, 2}, P2Case{0.75, 2}));

// ---------------------------------------------------- DistributionBuilder

TEST(Distribution, CdfBasics) {
  DistributionBuilder b;
  b.add(1.0);
  b.add(2.0);
  b.add(2.0);
  b.add(10.0);
  const auto cdf = b.cdf();
  ASSERT_EQ(cdf.size(), 3u);  // distinct values
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].y, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].y, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].y, 1.0);
}

TEST(Distribution, CcdfComplementsCdf) {
  DistributionBuilder b;
  b.add_all(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  const auto cdf = b.cdf();
  const auto ccdf = b.ccdf();
  ASSERT_EQ(cdf.size(), ccdf.size());
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    EXPECT_DOUBLE_EQ(cdf[i].y + ccdf[i].y, 1.0);
  }
}

TEST(Distribution, WeightsShiftTheCdf) {
  DistributionBuilder b;
  b.add(0.0, 1.0);
  b.add(100.0, 3.0);
  EXPECT_DOUBLE_EQ(b.fraction_at_most(0.0), 0.25);
  EXPECT_DOUBLE_EQ(b.fraction_at_most(100.0), 1.0);
  EXPECT_DOUBLE_EQ(b.quantile(0.5), 100.0);
}

TEST(Distribution, FractionAtLeast) {
  DistributionBuilder b;
  b.add_all(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(b.fraction_at_least(3.0), 0.5);
  EXPECT_DOUBLE_EQ(b.fraction_at_least(5.0), 0.0);
  EXPECT_DOUBLE_EQ(b.fraction_at_least(0.0), 1.0);
}

TEST(Distribution, CdfAtFixedAxis) {
  DistributionBuilder b;
  b.add_all(std::vector<double>{10.0, 20.0, 30.0});
  const double xs[] = {5.0, 15.0, 25.0, 35.0};
  const auto pts = b.cdf_at(xs);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0].y, 0.0);
  EXPECT_NEAR(pts[1].y, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pts[2].y, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pts[3].y, 1.0);
}

TEST(Distribution, EmptyThrows) {
  DistributionBuilder b;
  EXPECT_THROW((void)b.cdf(), ConfigError);
  EXPECT_THROW((void)b.quantile(0.5), ConfigError);
}

TEST(Distribution, NegativeWeightRejected) {
  DistributionBuilder b;
  EXPECT_THROW(b.add(1.0, -0.5), ConfigError);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

// ----------------------------------------------------------- RunningStats

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats rs;
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(v));
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, VarianceOfFewSamplesIsZero) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace acdn
