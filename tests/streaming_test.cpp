#include <gtest/gtest.h>

#include "core/streaming.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::make_measurement;

PredictorConfig config(int gate = 1) {
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = gate;
  pc.grouping = Grouping::kEcsPrefix;
  return pc;
}

TEST(StreamingTrainer, MatchesBatchOnSmallExactInput) {
  // With < 5 samples per target, P2 falls back to exact quantiles, so the
  // streaming snapshot must match the batch trainer exactly.
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 20.0}, {1, 45.0}}));
  ms.push_back(make_measurement(1, 10, 0, 34.0, {{0, 24.0}, {1, 41.0}}));
  ms.push_back(make_measurement(2, 10, 0, 9.0, {{0, 14.0}}));

  HistoryPredictor batch(config(2));
  batch.train(ms);

  StreamingTrainer stream(config(2));
  for (const BeaconMeasurement& m : ms) stream.observe(m);
  const auto snapshot = stream.snapshot();

  ASSERT_EQ(snapshot.size(), batch.predictions().size());
  for (const auto& [group, expected] : batch.predictions()) {
    const auto it = snapshot.find(group);
    ASSERT_NE(it, snapshot.end()) << group;
    EXPECT_EQ(it->second.anycast, expected.anycast);
    EXPECT_EQ(it->second.front_end, expected.front_end);
    EXPECT_NEAR(it->second.predicted_ms, expected.predicted_ms, 1e-9);
  }
}

TEST(StreamingTrainer, GateSuppressesThinGroups) {
  StreamingTrainer stream(config(3));
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_TRUE(stream.snapshot().empty());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_EQ(stream.snapshot().size(), 1u);
}

TEST(StreamingTrainer, ResetClearsState) {
  StreamingTrainer stream(config());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_GT(stream.target_state_count(), 0u);
  EXPECT_EQ(stream.observed(), 1u);
  stream.reset();
  EXPECT_EQ(stream.target_state_count(), 0u);
  EXPECT_EQ(stream.observed(), 0u);
  EXPECT_TRUE(stream.snapshot().empty());
}

TEST(StreamingTrainer, AnycastGainIsExposed) {
  StreamingTrainer stream(config());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  const auto snapshot = stream.snapshot();
  const Prediction& p = snapshot.at(1);
  EXPECT_FALSE(p.anycast);
  ASSERT_TRUE(p.anycast_ms.has_value());
  EXPECT_NEAR(*p.anycast_ms - p.predicted_ms, 10.0, 1e-9);
}

TEST(StreamingTrainer, ApproximatesBatchOnRealWorldData) {
  // On a day of simulated measurements, streaming P25 estimates should
  // agree with the exact batch predictor for the overwhelming majority of
  // groups (P2 error can flip near-ties).
  ScenarioConfig sc = ScenarioConfig::small_test();
  sc.schedule.beacon_sampling = 0.3;
  World world(sc);
  Simulation sim(world);
  sim.run_days(1);
  const auto day = sim.measurements().by_day(0);

  HistoryPredictor batch(config(10));
  batch.train(day);
  StreamingTrainer stream(config(10));
  for (const BeaconMeasurement& m : day) stream.observe(m);
  const auto snapshot = stream.snapshot();

  ASSERT_EQ(snapshot.size(), batch.predictions().size());
  ASSERT_GT(snapshot.size(), 5u);
  int agree = 0;
  double metric_error = 0.0;
  for (const auto& [group, expected] : batch.predictions()) {
    const Prediction& got = snapshot.at(group);
    if (got.anycast == expected.anycast &&
        (got.anycast || got.front_end == expected.front_end)) {
      ++agree;
    }
    metric_error +=
        std::abs(got.predicted_ms - expected.predicted_ms);
  }
  // P2 estimation error can flip near-ties (anycast vs closest front-end
  // metrics are often within a millisecond), so demand broad but not
  // perfect agreement, plus small metric error below.
  EXPECT_GE(double(agree) / double(snapshot.size()), 0.7);
  EXPECT_LT(metric_error / double(snapshot.size()), 2.0);  // ms
}

TEST(StreamingTrainer, LdnsGroupingPools) {
  PredictorConfig pc = config(3);
  pc.grouping = Grouping::kLdns;
  StreamingTrainer stream(pc);
  for (std::uint32_t c = 1; c <= 3; ++c) {
    stream.observe(make_measurement(c, 77, 0, 30.0, {{0, 12.0}}));
  }
  const auto snapshot = stream.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot.count(77));
}

}  // namespace
}  // namespace acdn
