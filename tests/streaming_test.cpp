#include <gtest/gtest.h>

#include "core/streaming.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::make_measurement;

PredictorConfig config(int gate = 1) {
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = gate;
  pc.grouping = Grouping::kEcsPrefix;
  return pc;
}

TEST(StreamingTrainer, MatchesBatchOnSmallExactInput) {
  // With < 5 samples per target, P2 falls back to exact quantiles, so the
  // streaming snapshot must match the batch trainer exactly.
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 20.0}, {1, 45.0}}));
  ms.push_back(make_measurement(1, 10, 0, 34.0, {{0, 24.0}, {1, 41.0}}));
  ms.push_back(make_measurement(2, 10, 0, 9.0, {{0, 14.0}}));

  HistoryPredictor batch(config(2));
  batch.train(ms);

  StreamingTrainer stream(config(2));
  for (const BeaconMeasurement& m : ms) stream.observe(m);
  const auto snapshot = stream.snapshot();

  ASSERT_EQ(snapshot.size(), batch.predictions().size());
  for (const auto& [group, expected] : batch.predictions()) {
    const auto it = snapshot.find(group);
    ASSERT_NE(it, snapshot.end()) << group;
    EXPECT_EQ(it->second.anycast, expected.anycast);
    EXPECT_EQ(it->second.front_end, expected.front_end);
    EXPECT_NEAR(it->second.predicted_ms, expected.predicted_ms, 1e-9);
  }
}

TEST(StreamingTrainer, GateSuppressesThinGroups) {
  StreamingTrainer stream(config(3));
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_TRUE(stream.snapshot().empty());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_EQ(stream.snapshot().size(), 1u);
}

TEST(StreamingTrainer, ResetClearsState) {
  StreamingTrainer stream(config());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  EXPECT_GT(stream.target_state_count(), 0u);
  EXPECT_EQ(stream.observed(), 1u);
  stream.reset();
  EXPECT_EQ(stream.target_state_count(), 0u);
  EXPECT_EQ(stream.observed(), 0u);
  EXPECT_TRUE(stream.snapshot().empty());
}

TEST(StreamingTrainer, AnycastGainIsExposed) {
  StreamingTrainer stream(config());
  stream.observe(make_measurement(1, 10, 0, 30.0, {{0, 20.0}}));
  const auto snapshot = stream.snapshot();
  const Prediction& p = snapshot.at(1);
  EXPECT_FALSE(p.anycast);
  ASSERT_TRUE(p.anycast_ms.has_value());
  EXPECT_NEAR(*p.anycast_ms - p.predicted_ms, 10.0, 1e-9);
}

TEST(StreamingTrainer, ApproximatesBatchOnRealWorldData) {
  // On a day of simulated measurements, streaming P25 estimates should
  // agree with the exact batch predictor for the overwhelming majority of
  // groups (P2 error can flip near-ties).
  ScenarioConfig sc = ScenarioConfig::small_test();
  sc.schedule.beacon_sampling = 0.3;
  World world(sc);
  Simulation sim(world);
  sim.run_days(1);
  const auto day = sim.measurements().by_day(0);

  HistoryPredictor batch(config(10));
  batch.train(day);
  StreamingTrainer stream(config(10));
  for (const BeaconMeasurement& m : day) stream.observe(m);
  const auto snapshot = stream.snapshot();

  ASSERT_EQ(snapshot.size(), batch.predictions().size());
  ASSERT_GT(snapshot.size(), 5u);
  int agree = 0;
  double metric_error = 0.0;
  for (const auto& [group, expected] : batch.predictions()) {
    const Prediction& got = snapshot.at(group);
    if (got.anycast == expected.anycast &&
        (got.anycast || got.front_end == expected.front_end)) {
      ++agree;
    }
    metric_error +=
        std::abs(got.predicted_ms - expected.predicted_ms);
  }
  // P2 estimation error can flip near-ties (anycast vs closest front-end
  // metrics are often within a millisecond), so demand broad but not
  // perfect agreement, plus small metric error below.
  EXPECT_GE(double(agree) / double(snapshot.size()), 0.7);
  EXPECT_LT(metric_error / double(snapshot.size()), 2.0);  // ms
}

TEST(StreamingTrainer, DistinguishesGroupsAPowerOfTwoApart) {
  // Regression: the packed (group, target) key once shifted the group by
  // 33 bits, silently dropping group bit 31 — groups 2^31 apart aliased
  // onto one P² state and reported each other's estimates.
  const std::uint32_t lo = 5;
  const std::uint32_t hi = 5u + (1u << 31);
  StreamingTrainer stream(config());
  stream.observe(make_measurement(lo, 10, 0, 30.0, {{0, 10.0}}));
  stream.observe(make_measurement(hi, 10, 0, 300.0, {{0, 100.0}}));

  const auto snapshot = stream.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  ASSERT_TRUE(snapshot.count(lo));
  ASSERT_TRUE(snapshot.count(hi));
  EXPECT_NEAR(snapshot.at(lo).predicted_ms, 10.0, 1e-9);
  EXPECT_NEAR(snapshot.at(hi).predicted_ms, 100.0, 1e-9);
}

TEST(StreamingTrainer, TieBreaksMatchBatchPredictor) {
  // Regression: snapshot() used to walk the unordered_map in hash order,
  // so when several front-ends tied on the metric, which one "won" varied
  // run to run and disagreed with the batch trainer. Both now iterate
  // targets in the same order (front-end ascending, anycast last) with
  // first-wins selection, so exact ties resolve identically.
  std::vector<BeaconMeasurement> ms;
  for (std::uint32_t group = 1; group <= 40; ++group) {
    // Every target — including anycast — measures exactly 20 ms, inserted
    // with front-ends descending to stress insertion-order independence.
    ms.push_back(make_measurement(group, 10, 0, 20.0,
                                  {{7, 20.0}, {3, 20.0}, {1, 20.0}}));
  }

  HistoryPredictor batch(config());
  batch.train(ms);
  StreamingTrainer stream(config());
  for (const BeaconMeasurement& m : ms) stream.observe(m);
  const auto snapshot = stream.snapshot();

  ASSERT_EQ(snapshot.size(), batch.predictions().size());
  for (const auto& [group, expected] : batch.predictions()) {
    const Prediction& got = snapshot.at(group);
    EXPECT_EQ(got.anycast, expected.anycast) << "group " << group;
    EXPECT_EQ(got.front_end, expected.front_end) << "group " << group;
    // The shared tie-break: lowest front-end id wins, never anycast.
    EXPECT_FALSE(got.anycast);
    EXPECT_EQ(got.front_end, FrontEndId(1));
  }
}

TEST(StreamingTrainer, RejectsFrontEndIdsAbove31Bits) {
  // Bit 31 of the low word is the anycast flag; a front-end id that would
  // collide with it must fail loudly instead of corrupting the key.
  StreamingTrainer stream(config());
  EXPECT_THROW(
      stream.observe(make_measurement(1, 10, 0, 30.0, {{1u << 31, 20.0}})),
      Error);
}

TEST(StreamingTrainer, LdnsGroupingPools) {
  PredictorConfig pc = config(3);
  pc.grouping = Grouping::kLdns;
  StreamingTrainer stream(pc);
  for (std::uint32_t c = 1; c <= 3; ++c) {
    stream.observe(make_measurement(c, 77, 0, 30.0, {{0, 12.0}}));
  }
  const auto snapshot = stream.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_TRUE(snapshot.count(77));
}

}  // namespace
}  // namespace acdn
