#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "report/svg_chart.h"

namespace acdn {
namespace {

Figure sample_figure() {
  Figure fig("Figure X: a <test> & check", "latency_ms", "CDF");
  fig.add_series(Series{"alpha", {{0.0, 0.0}, {10.0, 0.4}, {50.0, 1.0}}});
  fig.add_series(Series{"beta", {{5.0, 0.2}, {40.0, 0.9}}});
  return fig;
}

TEST(SvgChart, ProducesWellFormedDocument) {
  const std::string svg = render_svg(sample_figure(), SvgOptions{});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One path per series.
  std::size_t paths = 0;
  for (std::size_t pos = 0;
       (pos = svg.find("<path", pos)) != std::string::npos; ++pos) {
    ++paths;
  }
  EXPECT_EQ(paths, 2u);
  // Legend labels present.
  EXPECT_NE(svg.find(">alpha<"), std::string::npos);
  EXPECT_NE(svg.find(">beta<"), std::string::npos);
}

TEST(SvgChart, EscapesXmlSpecials) {
  const std::string svg = render_svg(sample_figure(), SvgOptions{});
  EXPECT_NE(svg.find("&lt;test&gt; &amp; check"), std::string::npos);
  EXPECT_EQ(svg.find("<test>"), std::string::npos);
}

TEST(SvgChart, LogScaleRendersAndLabels) {
  Figure fig("log", "km", "CDF");
  fig.add_series(Series{"d", {{64.0, 0.1}, {1024.0, 0.6}, {8192.0, 1.0}}});
  SvgOptions options;
  options.log_x = true;
  options.x_min = 64;
  options.x_max = 8192;
  const std::string svg = render_svg(fig, options);
  EXPECT_NE(svg.find("(log scale)"), std::string::npos);
  EXPECT_NE(svg.find("<path"), std::string::npos);
}

TEST(SvgChart, WritesToDisk) {
  const std::string path = ::testing::TempDir() + "acdn_chart.svg";
  write_svg(sample_figure(), path, SvgOptions{});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_GT(content.size(), 500u);
  std::remove(path.c_str());
}

TEST(SvgChart, RejectsTinyCanvasAndBadPath) {
  SvgOptions tiny;
  tiny.width_px = 10;
  tiny.height_px = 10;
  EXPECT_THROW((void)render_svg(sample_figure(), tiny), ConfigError);
  EXPECT_THROW(write_svg(sample_figure(), "/nonexistent-dir/x.svg",
                         SvgOptions{}),
               Error);
}

TEST(SvgChart, EmptySeriesStillRendersFrame) {
  Figure fig("empty", "x", "y");
  fig.add_series(Series{"nothing", {}});
  const std::string svg = render_svg(fig, SvgOptions{});
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_EQ(svg.find("<path"), std::string::npos);
}

}  // namespace
}  // namespace acdn
