#include <gtest/gtest.h>

#include "analysis/tcp_disruption.h"
#include "common/error.h"
#include "stats/quantile.h"

namespace acdn {
namespace {

TEST(FlowDurations, ProfilesAreOrdered) {
  Rng rng(1);
  std::vector<double> web, page, download, video;
  for (int i = 0; i < 4000; ++i) {
    web.push_back(sample_flow_duration(FlowProfile::kWebShort, rng));
    page.push_back(sample_flow_duration(FlowProfile::kWebPage, rng));
    download.push_back(sample_flow_duration(FlowProfile::kDownload, rng));
    video.push_back(sample_flow_duration(FlowProfile::kVideoLong, rng));
  }
  EXPECT_LT(median(web), median(page));
  EXPECT_LT(median(page), median(download));
  EXPECT_LT(median(download), median(video));
  EXPECT_NEAR(median(web), 0.5, 0.1);
  EXPECT_NEAR(median(video), 1500.0, 200.0);
  for (double d : web) EXPECT_GT(d, 0.0);
}

TEST(Disruption, ZeroChangeRateMeansNoDisruption) {
  DisruptionConfig config;
  config.route_changes_per_day = 0.0;
  config.flows_per_estimate = 5000;
  Rng rng(2);
  const DisruptionEstimate e =
      estimate_disruption(FlowProfile::kVideoLong, config, rng);
  EXPECT_DOUBLE_EQ(e.disrupted_fraction, 0.0);
  EXPECT_GT(e.mean_duration_s, 0.0);
}

TEST(Disruption, MatchesPoissonExpectationForFixedDuration) {
  // With route changes at rate r, a flow of duration T is disrupted with
  // probability 1 - exp(-rT). Check against the lognormal-mean flows by
  // a crude bound: short flows must be (near) never disrupted at modest
  // rates; disruption grows with the rate.
  DisruptionConfig low;
  low.route_changes_per_day = 0.1;
  low.flows_per_estimate = 50000;
  DisruptionConfig high = low;
  high.route_changes_per_day = 20.0;

  Rng rng(3);
  const auto short_low =
      estimate_disruption(FlowProfile::kWebShort, low, rng);
  const auto short_high =
      estimate_disruption(FlowProfile::kWebShort, high, rng);
  EXPECT_LT(short_low.disrupted_fraction, 1e-4);
  EXPECT_GT(short_high.disrupted_fraction, short_low.disrupted_fraction);

  const auto video_low =
      estimate_disruption(FlowProfile::kVideoLong, low, rng);
  // Analytic check at the mean duration: 1-exp(-r*mean) within a factor.
  const double r = low.route_changes_per_day / 86400.0;
  const double analytic = 1.0 - std::exp(-r * video_low.mean_duration_s);
  EXPECT_NEAR(video_low.disrupted_fraction, analytic, analytic * 0.6);
}

TEST(Disruption, SweepCoversAllProfiles) {
  DisruptionConfig config;
  config.flows_per_estimate = 2000;
  Rng rng(4);
  const auto sweep = disruption_sweep(config, rng);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].profile, FlowProfile::kWebShort);
  EXPECT_EQ(sweep[3].profile, FlowProfile::kVideoLong);
  // Longer flows are never less disrupted.
  EXPECT_LE(sweep[0].disrupted_fraction, sweep[3].disrupted_fraction);
}

TEST(Disruption, ConfigValidation) {
  DisruptionConfig bad;
  bad.route_changes_per_day = -1.0;
  Rng rng(5);
  EXPECT_THROW(
      (void)estimate_disruption(FlowProfile::kWebShort, bad, rng),
      ConfigError);
  bad = DisruptionConfig{};
  bad.flows_per_estimate = 0;
  EXPECT_THROW(
      (void)estimate_disruption(FlowProfile::kWebShort, bad, rng),
      ConfigError);
}

TEST(Disruption, ProfileNames) {
  EXPECT_STREQ(to_string(FlowProfile::kWebShort), "web-short");
  EXPECT_STREQ(to_string(FlowProfile::kVideoLong), "video-long");
}

}  // namespace
}  // namespace acdn
