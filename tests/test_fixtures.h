// Shared test fixtures: a tiny hand-built metro database and AS graph with
// known geography, so routing tests can assert exact paths, plus helpers
// for building measurement logs by hand.
#pragma once

#include <vector>

#include "beacon/measurement.h"
#include "geo/metro.h"
#include "topology/as_graph.h"

namespace acdn::testfx {

// Four metros on a rough west-to-east line:
//   Seattle --- Denver --- Chicago --- NewYork
// with real-ish coordinates so distances are meaningful.
inline MetroDatabase tiny_metros() {
  std::vector<Metro> metros;
  metros.push_back(Metro{MetroId{}, "Seattle", "US",
                         Region::kNorthAmerica, {47.61, -122.33}, 4.0});
  metros.push_back(Metro{MetroId{}, "Denver", "US",
                         Region::kNorthAmerica, {39.74, -104.99}, 2.9});
  metros.push_back(Metro{MetroId{}, "Chicago", "US",
                         Region::kNorthAmerica, {41.88, -87.63}, 9.5});
  metros.push_back(Metro{MetroId{}, "NewYork", "US",
                         Region::kNorthAmerica, {40.71, -74.01}, 19.5});
  return MetroDatabase(std::move(metros));
}

inline constexpr MetroId kSeattle{0};
inline constexpr MetroId kDenver{1};
inline constexpr MetroId kChicago{2};
inline constexpr MetroId kNewYork{3};

/// Identifiers for the tiny AS graph below.
struct TinyWorld {
  AsGraph graph;
  AsId tier1;    // present everywhere, CDN's transit provider
  AsId transit;  // present everywhere, peers with CDN at Chicago only
  AsId access_west;   // Seattle+Denver eyeball, customer of transit
  AsId access_east;   // Chicago+NewYork eyeball, customer of tier1,
                      // peers with CDN at NewYork
  AsId cdn;           // PoPs everywhere; front-ends decided by the test
};

/// Builds:
///   tier1 (everywhere)  <- provider of transit, access_east buys too
///   transit (everywhere) <- provider of access_west
///   cdn: customer of tier1 (all metros); peers with transit at Chicago;
///        peers with access_east at NewYork.
inline TinyWorld tiny_world(const MetroDatabase& metros) {
  TinyWorld w{AsGraph(metros), {}, {}, {}, {}, {}};
  const std::vector<MetroId> all{kSeattle, kDenver, kChicago, kNewYork};

  AsNode tier1;
  tier1.asn = 1;
  tier1.name = "Tier1";
  tier1.type = AsType::kTier1;
  tier1.presence = all;
  tier1.backbone_stretch = 1.0;
  w.tier1 = w.graph.add_as(tier1);

  AsNode transit;
  transit.asn = 2;
  transit.name = "Transit";
  transit.type = AsType::kTransit;
  transit.presence = all;
  transit.backbone_stretch = 1.0;
  w.transit = w.graph.add_as(transit);

  AsNode west;
  west.asn = 10;
  west.name = "AccessWest";
  west.type = AsType::kAccess;
  west.presence = {kSeattle, kDenver};
  west.backbone_stretch = 1.0;
  w.access_west = w.graph.add_as(west);

  AsNode east;
  east.asn = 11;
  east.name = "AccessEast";
  east.type = AsType::kAccess;
  east.presence = {kChicago, kNewYork};
  east.backbone_stretch = 1.0;
  w.access_east = w.graph.add_as(east);

  AsNode cdn;
  cdn.asn = 8075;
  cdn.name = "CDN";
  cdn.type = AsType::kCdn;
  cdn.presence = all;
  cdn.backbone_stretch = 1.0;
  w.cdn = w.graph.add_as(cdn);

  // Relationships.
  w.graph.add_link({w.transit, w.tier1, Relationship::kCustomerToProvider,
                    all});
  w.graph.add_link({w.access_west, w.transit,
                    Relationship::kCustomerToProvider, {kSeattle, kDenver}});
  w.graph.add_link({w.access_east, w.tier1,
                    Relationship::kCustomerToProvider, {kChicago, kNewYork}});
  w.graph.add_link({w.cdn, w.tier1, Relationship::kCustomerToProvider, all});
  w.graph.add_link({w.cdn, w.transit, Relationship::kPeerToPeer, {kChicago}});
  w.graph.add_link({w.cdn, w.access_east, Relationship::kPeerToPeer,
                    {kNewYork}});
  return w;
}

/// One beacon measurement with an anycast target and unicast targets.
inline BeaconMeasurement make_measurement(
    std::uint32_t client, std::uint32_t ldns, DayIndex day,
    double anycast_ms,
    std::vector<std::pair<std::uint32_t, double>> unicast) {
  BeaconMeasurement m;
  m.beacon_id = client * 1000 + static_cast<std::uint32_t>(day);
  m.client = ClientId(client);
  m.ldns = LdnsId(ldns);
  m.day = day;
  m.targets.push_back({true, FrontEndId{}, anycast_ms});
  for (const auto& [fe, ms] : unicast) {
    m.targets.push_back({false, FrontEndId(fe), ms});
  }
  return m;
}

}  // namespace acdn::testfx
