#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "test_fixtures.h"
#include "topology/builder.h"

namespace acdn {
namespace {

using testfx::kChicago;
using testfx::kDenver;
using testfx::kNewYork;
using testfx::kSeattle;

// ---------------------------------------------------------------- AsGraph

TEST(AsGraph, AddAsAssignsSequentialIds) {
  const MetroDatabase metros = testfx::tiny_metros();
  AsGraph graph(metros);
  AsNode a;
  a.name = "A";
  a.presence = {kSeattle};
  AsNode b;
  b.name = "B";
  b.presence = {kDenver};
  EXPECT_EQ(graph.add_as(a).value, 0u);
  EXPECT_EQ(graph.add_as(b).value, 1u);
  EXPECT_EQ(graph.as_count(), 2u);
}

TEST(AsGraph, RejectsAsWithoutPresence) {
  const MetroDatabase metros = testfx::tiny_metros();
  AsGraph graph(metros);
  AsNode empty;
  empty.name = "Empty";
  EXPECT_THROW((void)graph.add_as(empty), ConfigError);
}

TEST(AsGraph, LinkValidatesPresence) {
  const MetroDatabase metros = testfx::tiny_metros();
  AsGraph graph(metros);
  AsNode a;
  a.name = "A";
  a.presence = {kSeattle};
  AsNode b;
  b.name = "B";
  b.presence = {kDenver};
  const AsId ia = graph.add_as(a);
  const AsId ib = graph.add_as(b);
  // No common metro: linking at Seattle must fail (B not present).
  EXPECT_THROW(graph.add_link({ia, ib, Relationship::kPeerToPeer,
                               {kSeattle}}),
               ConfigError);
  // Empty peering metro list is also invalid.
  EXPECT_THROW(graph.add_link({ia, ib, Relationship::kPeerToPeer, {}}),
               ConfigError);
  // Self links are invalid.
  EXPECT_THROW(graph.add_link({ia, ia, Relationship::kPeerToPeer,
                               {kSeattle}}),
               ConfigError);
}

TEST(AsGraph, NeighborKindsMatchRelationship) {
  const MetroDatabase metros = testfx::tiny_metros();
  const testfx::TinyWorld w = testfx::tiny_world(metros);

  // transit is a customer of tier1: from tier1's perspective the transit
  // is a customer; from the transit's, tier1 is a provider.
  bool found = false;
  for (const Neighbor& nb : w.graph.neighbors(w.tier1)) {
    if (nb.as == w.transit) {
      EXPECT_EQ(nb.kind, Neighbor::Kind::kCustomer);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  found = false;
  for (const Neighbor& nb : w.graph.neighbors(w.transit)) {
    if (nb.as == w.tier1) {
      EXPECT_EQ(nb.kind, Neighbor::Kind::kProvider);
      found = true;
    }
    if (nb.as == w.cdn) {
      EXPECT_EQ(nb.kind, Neighbor::Kind::kPeer);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AsGraph, PeeringMetros) {
  const MetroDatabase metros = testfx::tiny_metros();
  const testfx::TinyWorld w = testfx::tiny_world(metros);
  EXPECT_EQ(w.graph.peering_metros(w.cdn, w.transit),
            std::vector<MetroId>{kChicago});
  EXPECT_EQ(w.graph.peering_metros(w.transit, w.cdn),
            std::vector<MetroId>{kChicago});
  EXPECT_TRUE(w.graph.peering_metros(w.access_west, w.cdn).empty());
}

TEST(AsGraph, AccessAsesIn) {
  const MetroDatabase metros = testfx::tiny_metros();
  const testfx::TinyWorld w = testfx::tiny_world(metros);
  const auto in_seattle = w.graph.access_ases_in(kSeattle);
  ASSERT_EQ(in_seattle.size(), 1u);
  EXPECT_EQ(in_seattle.front(), w.access_west);
  const auto in_chicago = w.graph.access_ases_in(kChicago);
  ASSERT_EQ(in_chicago.size(), 1u);
  EXPECT_EQ(in_chicago.front(), w.access_east);
}

TEST(AsGraph, IntraAsDistanceIsSymmetricAndStretched) {
  const MetroDatabase metros = testfx::tiny_metros();
  const testfx::TinyWorld w = testfx::tiny_world(metros);
  const Kilometers ab = w.graph.intra_as_distance_km(w.tier1, kSeattle,
                                                     kNewYork);
  const Kilometers ba = w.graph.intra_as_distance_km(w.tier1, kNewYork,
                                                     kSeattle);
  EXPECT_DOUBLE_EQ(ab, ba);
  const Kilometers geo = metros.distance_km(kSeattle, kNewYork);
  EXPECT_GE(ab, geo * 0.9);       // never much shorter than the geodesic
  EXPECT_LE(ab, geo * 1.0 * 1.3);  // stretch=1.0, unevenness < 1.25
  EXPECT_DOUBLE_EQ(
      w.graph.intra_as_distance_km(w.tier1, kDenver, kDenver), 0.0);
}

TEST(AsGraph, NearestByIgpPrefersCloseMetros) {
  const MetroDatabase metros = testfx::tiny_metros();
  const testfx::TinyWorld w = testfx::tiny_world(metros);
  const std::vector<MetroId> candidates{kSeattle, kNewYork};
  EXPECT_EQ(w.graph.nearest_by_igp(w.tier1, kDenver, candidates), kSeattle);
  EXPECT_EQ(w.graph.nearest_by_igp(w.tier1, kChicago, candidates), kNewYork);
}

// ---------------------------------------------------------------- Builder

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    graph_ = std::make_unique<AsGraph>(
        build_topology(MetroDatabase::world(), config_, rng));
  }

  TopologyConfig config_;
  std::unique_ptr<AsGraph> graph_;
};

TEST_F(BuilderTest, EveryMetroHasAccessIsp) {
  for (const Metro& m : MetroDatabase::world().all()) {
    EXPECT_FALSE(graph_->access_ases_in(m.id).empty()) << m.name;
  }
}

TEST_F(BuilderTest, TypeCounts) {
  EXPECT_EQ(graph_->ases_of_type(AsType::kTier1).size(),
            static_cast<std::size_t>(config_.tier1_count));
  EXPECT_GE(graph_->ases_of_type(AsType::kTransit).size(), 7u);
  EXPECT_GE(graph_->ases_of_type(AsType::kAccess).size(),
            MetroDatabase::world().size());
  EXPECT_TRUE(graph_->ases_of_type(AsType::kCdn).empty());  // added later
}

TEST_F(BuilderTest, EveryAccessIspHasAProvider) {
  for (AsId access : graph_->ases_of_type(AsType::kAccess)) {
    bool has_provider = false;
    for (const Neighbor& nb : graph_->neighbors(access)) {
      has_provider |= nb.kind == Neighbor::Kind::kProvider;
    }
    EXPECT_TRUE(has_provider) << graph_->as_node(access).name;
  }
}

TEST_F(BuilderTest, RemotePeeringFractionRoughlyHonored) {
  int remote = 0;
  int national = 0;
  for (AsId access : graph_->ases_of_type(AsType::kAccess)) {
    const AsNode& node = graph_->as_node(access);
    const bool is_local = node.name.find("-Local-") != std::string::npos;
    if (is_local) {
      // Metro-local ISPs never run the policy.
      EXPECT_FALSE(node.remote_peering_policy) << node.name;
      continue;
    }
    ++national;
    if (node.remote_peering_policy) {
      ++remote;
      EXPECT_FALSE(node.preferred_handoffs.empty());
    }
  }
  ASSERT_GT(national, 0);
  const double fraction = double(remote) / national;
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, config_.remote_peering_fraction * 3);
}

TEST_F(BuilderTest, DeterministicAcrossRuns) {
  Rng rng(99);
  const AsGraph again =
      build_topology(MetroDatabase::world(), config_, rng);
  ASSERT_EQ(again.as_count(), graph_->as_count());
  ASSERT_EQ(again.link_count(), graph_->link_count());
  for (std::size_t i = 0; i < again.as_count(); ++i) {
    const AsId id(static_cast<std::uint32_t>(i));
    EXPECT_EQ(again.as_node(id).name, graph_->as_node(id).name);
    EXPECT_EQ(again.as_node(id).presence, graph_->as_node(id).presence);
  }
}

TEST_F(BuilderTest, AddCdnAsConnects) {
  Rng rng(5);
  std::vector<MetroId> pops;
  const auto& metros = MetroDatabase::world();
  pops.push_back(metros.find_by_name("New York").value());
  pops.push_back(metros.find_by_name("London").value());
  pops.push_back(metros.find_by_name("Tokyo").value());
  const AsId cdn = add_cdn_as(*graph_, pops, CdnLinkConfig{}, rng);
  EXPECT_EQ(graph_->as_node(cdn).type, AsType::kCdn);
  // Must have at least one transit provider and some peers.
  int providers = 0;
  int peers = 0;
  for (const Neighbor& nb : graph_->neighbors(cdn)) {
    if (nb.kind == Neighbor::Kind::kProvider) ++providers;
    if (nb.kind == Neighbor::Kind::kPeer) ++peers;
  }
  EXPECT_GE(providers, 1);
  EXPECT_GE(peers, 1);
}

}  // namespace
}  // namespace acdn
