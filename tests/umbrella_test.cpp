// The umbrella header must stay a complete, self-contained include: this
// TU uses one symbol from every layer through acdn.h alone.
#include "acdn.h"

#include <gtest/gtest.h>

namespace acdn {
namespace {

TEST(Umbrella, EveryLayerIsReachable) {
  // common / geo / net / stats
  Rng rng(1);
  EXPECT_LT(haversine_km({0, 0}, {0, 1}), 112.0);
  EXPECT_EQ(Prefix::slash24_of(Ipv4Address(10, 1, 2, 3)).length(), 24);
  P2Quantile p2(0.25);
  p2.add(1.0);
  EXPECT_DOUBLE_EQ(p2.value(), 1.0);

  // topology / routing / latency / cdn / load / dns / workload / beacon
  // / analysis / core / atlas / sim / report, via the assembled world.
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  sim.run_day();
  EXPECT_GT(sim.measurements().total(), 0u);

  HistoryPredictor predictor{PredictorConfig{}};
  predictor.train(sim.measurements().by_day(0));

  const LoadModel load(world.clients(), world.router());
  EXPECT_EQ(load.baseline().overloaded_count(), 0u);

  Figure figure("t", "x", "y");
  figure.add_series(Series{"s", {{0.0, 1.0}}});
  EXPECT_FALSE(render_svg(figure, SvgOptions{}).empty());

  const ProbeSet probes = ProbeSet::place(world.graph(), 1, rng);
  EXPECT_GT(probes.size(), 0u);
}

}  // namespace
}  // namespace acdn
