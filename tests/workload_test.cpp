#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "sim/scenario.h"
#include "topology/builder.h"
#include "workload/clients.h"
#include "workload/schedule.h"

namespace acdn {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    Rng rng(12);
    graph_ = std::make_unique<AsGraph>(
        build_topology(MetroDatabase::world(), TopologyConfig{}, rng));
    config_.total_client_24s = 1500;
    PrefixAllocator addresses = PrefixAllocator::client_pool();
    Rng gen(13);
    clients_ = std::make_unique<ClientPopulation>(
        ClientPopulation::generate(*graph_, config_, addresses, gen));
  }

  std::unique_ptr<AsGraph> graph_;
  WorkloadConfig config_;
  std::unique_ptr<ClientPopulation> clients_;
};

TEST_F(WorkloadTest, ExactTotal) {
  EXPECT_EQ(clients_->size(),
            static_cast<std::size_t>(config_.total_client_24s));
}

TEST_F(WorkloadTest, ClientsAttachedToIspsPresentInTheirMetro) {
  for (const Client24& c : clients_->clients()) {
    EXPECT_TRUE(graph_->as_node(c.access_as).present_in(c.metro));
    EXPECT_EQ(graph_->as_node(c.access_as).type, AsType::kAccess);
  }
}

TEST_F(WorkloadTest, PrefixesAreUniqueAndResolvable) {
  for (const Client24& c : clients_->clients()) {
    EXPECT_EQ(c.prefix.length(), 24);
    const auto found = clients_->find_by_prefix(c.prefix);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, c.id);
  }
  EXPECT_FALSE(clients_->find_by_prefix(Prefix(Ipv4Address(8, 8, 8, 0), 24))
                   .has_value());
}

TEST_F(WorkloadTest, PopulationWeightedApportioning) {
  // Tokyo (37M, Asia at 0.5 penetration) must host more client /24s than
  // Auckland (1.7M at 0.9 penetration).
  std::map<MetroId, int> counts;
  for (const Client24& c : clients_->clients()) ++counts[c.metro];
  const auto& metros = MetroDatabase::world();
  EXPECT_GT(counts[metros.find_by_name("Tokyo").value()],
            counts[metros.find_by_name("Auckland").value()]);
}

TEST_F(WorkloadTest, ClientsAreNearTheirMetro) {
  const auto& metros = MetroDatabase::world();
  for (const Client24& c : clients_->clients()) {
    const Kilometers d =
        haversine_km(c.location, metros.metro(c.metro).location);
    EXPECT_LE(d, config_.placement_max_km * 1.01);
  }
}

TEST_F(WorkloadTest, QueryVolumeIsHeavyTailed) {
  std::vector<double> volumes;
  for (const Client24& c : clients_->clients()) {
    volumes.push_back(c.daily_queries);
    EXPECT_GT(c.daily_queries, 0.0);
  }
  std::sort(volumes.rbegin(), volumes.rend());
  double top_decile = 0.0, total = 0.0;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    total += volumes[i];
    if (i < volumes.size() / 10) top_decile += volumes[i];
  }
  // Heavily skewed: top 10% of /24s carry a large share of queries.
  EXPECT_GT(top_decile / total, 0.35);
  EXPECT_NEAR(clients_->total_query_weight(), total, 1e-6);
}

TEST_F(WorkloadTest, DeterministicGeneration) {
  PrefixAllocator a1 = PrefixAllocator::client_pool();
  Rng g1(13);
  const ClientPopulation again =
      ClientPopulation::generate(*graph_, config_, a1, g1);
  ASSERT_EQ(again.size(), clients_->size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    const ClientId id(static_cast<std::uint32_t>(i));
    EXPECT_EQ(again.client(id).prefix, clients_->client(id).prefix);
    EXPECT_EQ(again.client(id).metro, clients_->client(id).metro);
    EXPECT_DOUBLE_EQ(again.client(id).daily_queries,
                     clients_->client(id).daily_queries);
  }
}

TEST_F(WorkloadTest, ConfigValidation) {
  WorkloadConfig bad;
  bad.total_client_24s = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = WorkloadConfig{};
  bad.volume_pareto_alpha = 1.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = WorkloadConfig{};
  bad.placement_max_km = 1.0;
  EXPECT_THROW(bad.validate(), ConfigError);
}

// ---------------------------------------------------------------- Schedule

TEST(Schedule, WeekendFactorReducesVolume) {
  const ScheduleConfig config;
  const QuerySchedule schedule(config, SimCalendar{});  // Wed start
  Client24 c;
  c.daily_queries = 100.0;
  EXPECT_DOUBLE_EQ(schedule.expected_queries(c, 0), 100.0);        // Wed
  EXPECT_DOUBLE_EQ(schedule.expected_queries(c, 3),
                   100.0 * config.weekend_factor);                 // Sat
}

TEST(Schedule, PoissonDrawsCenterOnExpectation) {
  const QuerySchedule schedule(ScheduleConfig{}, SimCalendar{});
  Client24 c;
  c.daily_queries = 40.0;
  Rng rng(5);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += schedule.queries_for_day(c, 0, rng);
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(Schedule, QueryTimesFollowDiurnalCurve) {
  const QuerySchedule schedule(ScheduleConfig{}, SimCalendar{});
  Rng rng(6);
  int evening = 0, morning = 0;
  for (int i = 0; i < 8000; ++i) {
    const SimTime t = schedule.sample_query_time(2, rng);
    EXPECT_EQ(t.day, 2);
    EXPECT_GE(t.seconds, 0.0);
    EXPECT_LT(t.seconds, 86400.0);
    const double h = t.hour_of_day();
    if (h >= 18.0 && h < 22.0) ++evening;
    if (h >= 6.0 && h < 10.0) ++morning;
  }
  EXPECT_GT(evening, morning * 2);  // peak at 20:00, trough at 08:00
}

TEST(Schedule, ActivityScalesWithVolume) {
  const QuerySchedule schedule(ScheduleConfig{}, SimCalendar{});
  Client24 light;
  light.id = ClientId(1);
  light.daily_queries = 1.0;
  Client24 heavy;
  heavy.id = ClientId(2);
  heavy.daily_queries = 400.0;
  EXPECT_LT(schedule.activity_probability(light), 0.5);
  EXPECT_GT(schedule.activity_probability(heavy), 0.99);

  int light_days = 0;
  for (DayIndex d = 0; d < 200; ++d) {
    if (schedule.is_active(light, d, 42)) ++light_days;
    EXPECT_TRUE(schedule.is_active(heavy, d, 42));
  }
  EXPECT_GT(light_days, 10);
  EXPECT_LT(light_days, 120);
}

TEST(Schedule, ActivityIsDeterministicPerClientDay) {
  const QuerySchedule schedule(ScheduleConfig{}, SimCalendar{});
  Client24 c;
  c.id = ClientId(7);
  c.daily_queries = 2.0;
  for (DayIndex d = 0; d < 30; ++d) {
    EXPECT_EQ(schedule.is_active(c, d, 99), schedule.is_active(c, d, 99));
  }
}

TEST(Schedule, ActivityDisabledMeansAlwaysActive) {
  ScheduleConfig config;
  config.activity_scale = 0.0;
  const QuerySchedule schedule(config, SimCalendar{});
  Client24 c;
  c.id = ClientId(1);
  c.daily_queries = 0.01;
  EXPECT_DOUBLE_EQ(schedule.activity_probability(c), 1.0);
  EXPECT_TRUE(schedule.is_active(c, 3, 1));
}

TEST(Schedule, ActiveDayVolumeCompensatesForInactivity) {
  const QuerySchedule schedule(ScheduleConfig{}, SimCalendar{});
  Client24 c;
  c.id = ClientId(1);
  c.daily_queries = 2.0;
  const double p = schedule.activity_probability(c);
  // Long-run volume: p * conditional = unconditional expectation.
  EXPECT_NEAR(p * schedule.expected_queries_when_active(c, 0),
              schedule.expected_queries(c, 0), 1e-9);
  EXPECT_GT(schedule.expected_queries_when_active(c, 0),
            schedule.expected_queries(c, 0));
}

TEST(Schedule, BeaconSamplingRate) {
  ScheduleConfig config;
  config.beacon_sampling = 0.25;
  const QuerySchedule schedule(config, SimCalendar{});
  Rng rng(8);
  int carried = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (schedule.carries_beacon(rng)) ++carried;
  }
  EXPECT_NEAR(carried, 2500, 150);
}

}  // namespace
}  // namespace acdn
