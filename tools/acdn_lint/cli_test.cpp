// CLI-level coverage for the acdn_lint binary: exit codes for a clean
// tree / a tree with findings / a bad root path, and the --json golden
// output. Runs the real executable (ACDN_LINT_BIN) against throwaway
// trees, so the argument parsing and stream plumbing in main.cpp are
// covered, not just the library.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `acdn_lint <args>` with stdout captured into `capture`.
RunResult run_lint(const std::string& args, const fs::path& capture) {
  const std::string cmd = std::string(ACDN_LINT_BIN) + " " + args + " > " +
                          capture.string() + " 2> /dev/null";
  const int status = std::system(cmd.c_str());
  RunResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  std::ifstream in(capture, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  result.output = buf.str();
  return result;
}

class AcdnLintCli : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("acdn_lint_cli_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "sim");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << text;
  }

  [[nodiscard]] fs::path capture() const { return root_ / "out.txt"; }

  fs::path root_;
};

TEST_F(AcdnLintCli, CleanTreeExitsZeroWithNoOutput) {
  write("src/sim/clean.cpp", "int answer() { return 42; }\n");
  const RunResult r = run_lint(root_.string(), capture());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST_F(AcdnLintCli, FindingsExitOneAndNameTheRule) {
  write("src/sim/hot.cpp", "std::thread t;\n");
  const RunResult r = run_lint(root_.string(), capture());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("src/sim/hot.cpp:1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[raw-thread]"), std::string::npos) << r.output;
}

TEST_F(AcdnLintCli, BadRootExitsTwo) {
  const RunResult r =
      run_lint((root_ / "no_such_dir").string(), capture());
  EXPECT_EQ(r.exit_code, 2);

  const RunResult no_args = run_lint("", capture());
  EXPECT_EQ(no_args.exit_code, 2);
}

TEST_F(AcdnLintCli, JsonGoldenOutput) {
  write("src/sim/hot.cpp", "std::thread t;\n");
  const RunResult r = run_lint("--json " + root_.string(), capture());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.output,
            "[\n"
            "  {\"file\": \"src/sim/hot.cpp\", \"line\": 1, \"rule\": "
            "\"raw-thread\", \"message\": \"std::thread outside "
            "common/executor — all parallelism goes through "
            "Executor::global() so chunk plans stay deterministic and "
            "exceptions propagate\"}\n"
            "]\n");
}

TEST_F(AcdnLintCli, JsonCleanTreeIsEmptyArray) {
  write("src/sim/clean.cpp", "int answer() { return 42; }\n");
  const RunResult r = run_lint("--json " + root_.string(), capture());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "[]\n");
}

}  // namespace
