#include "acdn_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace acdn::lint {

namespace {

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// ------------------------------------------------------------ code view

/// The file with comments and string/char literals blanked to spaces
/// (newlines preserved), so rules never match prose or log text, plus the
/// line table for offset -> 1-based line lookups.
struct Stripped {
  std::string code;
  /// Comments kept, string/char literals blanked: the view NOLINT-ACDN
  /// directives are parsed from. Parsing them from raw text let string
  /// literals (raw strings especially) suppress or fabricate findings.
  std::string directives;
  std::vector<std::size_t> line_start;  // offset of each line's first char

  [[nodiscard]] int line_of(std::size_t pos) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), pos);
    return static_cast<int>(it - line_start.begin());
  }
};

Stripped strip(const std::string& text) {
  Stripped out;
  out.code.assign(text.size(), ' ');
  out.directives.assign(text.size(), ' ');
  out.line_start.push_back(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') out.line_start.push_back(i + 1);

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out.directives[i] = c;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out.directives[i] = c;
          out.directives[i + 1] = next;
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R (and an optional prefix like u8R).
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !ident_char(text[i - 2]) || text[i - 2] == '8' ||
               text[i - 2] == 'u' || text[i - 2] == 'U' ||
               text[i - 2] == 'L')) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') {
              raw_delim.push_back(text[j]);
              ++j;
            }
            state = State::kRaw;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && !(i > 0 && ident_char(text[i - 1]))) {
          // Skips digit separators like 1'000 via the look-back.
          state = State::kChar;
        } else {
          out.code[i] = c;
          out.directives[i] = c;
        }
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        out.directives[i] = c;
        break;
      case State::kBlock:
        out.directives[i] = c;
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.directives[i + 1] = next;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] == '\n') {
            out.line_start.push_back(i + 1);
          }
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
    if (c == '\n') out.code[i] = '\n';
  }
  // Every newline of the original survives in the directive view (escaped
  // newlines inside literals included), so its line numbers match the
  // line table.
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.directives[i] = '\n';
  }
  return out;
}

/// True when code[pos..pos+token) is `token` with identifier boundaries.
[[nodiscard]] bool word_at(const std::string& code, std::size_t pos,
                           const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  return end >= code.size() || !ident_char(code[end]);
}

/// All boundary-checked occurrences of `token` in the code view.
[[nodiscard]] std::vector<std::size_t> find_words(const std::string& code,
                                                  const std::string& token) {
  std::vector<std::size_t> out;
  for (std::size_t pos = code.find(token); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (word_at(code, pos, token)) out.push_back(pos);
  }
  return out;
}

[[nodiscard]] std::size_t skip_space(const std::string& code,
                                     std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Matches an angle-bracket group starting at code[open] == '<'. Returns
/// the offset one past the closing '>', or npos when it is not a template
/// argument list (comparison operators, EOF).
[[nodiscard]] std::size_t match_angles(const std::string& code,
                                       std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') ++depth;
    if (c == '>' && --depth == 0) return i + 1;
    if (c == ';' || c == '{') return std::string::npos;
  }
  return std::string::npos;
}

/// Matches a paren group starting at code[open] == '('. Returns the offset
/// one past the closing ')' (npos on EOF).
[[nodiscard]] std::size_t match_parens(const std::string& code,
                                       std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Identifier starting at pos, or empty.
[[nodiscard]] std::string read_ident(const std::string& code,
                                     std::size_t pos) {
  std::size_t end = pos;
  while (end < code.size() && ident_char(code[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(code[pos]))) {
    return {};
  }
  return code.substr(pos, end - pos);
}

// --------------------------------------------------------- NOLINT-ACDN

struct Directive {
  int line = 0;
  std::string rule;
  std::string justification;
};

/// Directives are parsed from the strings-blanked view (Stripped::
/// directives) so they work inside comments but a NOLINT-ACDN spelled in
/// a string or raw-string literal — test data, log text, the linter's own
/// fixtures — can neither suppress a finding nor fabricate a
/// nolint-justification one. Only a parenthesized lowercase rule name
/// parses as a directive; anything else (placeholders like
/// NOLINT-ACDN(<rule>) in prose) is ignored, which is fail-safe: a typo
/// never suppresses a finding.
std::vector<Directive> parse_directives(const std::string& text) {
  std::vector<Directive> out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string marker = "NOLINT-ACDN";
    for (std::size_t pos = line.find(marker); pos != std::string::npos;
         pos = line.find(marker, pos + 1)) {
      std::size_t p = pos + marker.size();
      if (p >= line.size() || line[p] != '(') continue;
      ++p;
      std::string rule;
      while (p < line.size() &&
             (std::islower(static_cast<unsigned char>(line[p])) != 0 ||
              line[p] == '-')) {
        rule.push_back(line[p]);
        ++p;
      }
      if (p >= line.size() || line[p] != ')' || rule.empty()) continue;
      ++p;
      Directive d;
      d.line = line_no;
      d.rule = rule;
      if (p < line.size() && line[p] == ':') {
        std::string just = line.substr(p + 1);
        const auto first = just.find_first_not_of(" \t");
        const auto last = just.find_last_not_of(" \t");
        if (first != std::string::npos) {
          just = just.substr(first, last - first + 1);
        } else {
          just.clear();
        }
        d.justification = just;
      }
      out.push_back(std::move(d));
    }
  }
  return out;
}

// ------------------------------------------- unordered container survey

const std::vector<std::string>& unordered_types() {
  static const std::vector<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

struct UnorderedSurvey {
  /// (declared name, line) — variables, members, parameters, functions
  /// returning unordered containers.
  std::vector<std::pair<std::string, int>> decls;
  /// (alias name, line) from `using X = std::unordered_...`.
  std::vector<std::pair<std::string, int>> aliases;
};

/// The declared entity following a type that ends at `after_type`:
/// skips `&`, `*`, and whitespace; rejects `::` (nested-type usage).
[[nodiscard]] std::string decl_name_after(const std::string& code,
                                          std::size_t after_type) {
  std::size_t p = skip_space(code, after_type);
  while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
    p = skip_space(code, p + 1);
  }
  if (p + 1 < code.size() && code[p] == ':' && code[p + 1] == ':') return {};
  return read_ident(code, p);
}

/// True when the token at `pos` is the RHS of `using X =` and fills in
/// the alias name.
[[nodiscard]] bool alias_target_name(const std::string& code,
                                     std::size_t pos, std::string* name) {
  // Walk back over "std::" and whitespace to the '='.
  std::size_t p = pos;
  while (p > 0 && (ident_char(code[p - 1]) || code[p - 1] == ':')) --p;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
    --p;
  }
  if (p == 0 || code[p - 1] != '=') return false;
  --p;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
    --p;
  }
  std::size_t end = p;
  while (p > 0 && ident_char(code[p - 1])) --p;
  if (p == end) return false;
  *name = code.substr(p, end - p);
  return true;
}

UnorderedSurvey survey_unordered(const Stripped& s) {
  UnorderedSurvey out;
  for (const std::string& type : unordered_types()) {
    for (std::size_t pos : find_words(s.code, type)) {
      const std::size_t open = skip_space(s.code, pos + type.size());
      if (open >= s.code.size() || s.code[open] != '<') continue;
      const std::size_t after = match_angles(s.code, open);
      if (after == std::string::npos) continue;
      std::string alias;
      if (alias_target_name(s.code, pos, &alias)) {
        out.aliases.emplace_back(alias, s.line_of(pos));
        continue;
      }
      const std::string name = decl_name_after(s.code, after);
      if (!name.empty()) out.decls.emplace_back(name, s.line_of(pos));
    }
  }
  // Declarations through an alias: `NameMap<V> counters;`. They inherit
  // the alias's justification, so they are tracked for the iteration rule
  // but produce no unordered-decl finding of their own.
  for (const auto& [alias, alias_line] : out.aliases) {
    for (std::size_t pos : find_words(s.code, alias)) {
      if (s.line_of(pos) == alias_line) continue;  // the definition
      std::size_t p = skip_space(s.code, pos + alias.size());
      if (p < s.code.size() && s.code[p] == '<') {
        const std::size_t after = match_angles(s.code, p);
        if (after == std::string::npos) continue;
        p = after;
      }
      const std::string name = decl_name_after(s.code, p);
      if (!name.empty()) out.decls.emplace_back(name, -1);
    }
  }
  return out;
}

// ------------------------------------------------------------- rules

void rule_unordered_iter(const Stripped& s,
                         const std::set<std::string>& names,
                         std::vector<Finding>* out) {
  if (names.empty()) return;
  // Range-for whose range expression mentions an unordered name.
  for (std::size_t pos : find_words(s.code, "for")) {
    const std::size_t open = skip_space(s.code, pos + 3);
    if (open >= s.code.size() || s.code[open] != '(') continue;
    const std::size_t close = match_parens(s.code, open);
    if (close == std::string::npos) continue;
    // Find the range-for ':' at paren depth 0, skipping '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i + 1 < close; ++i) {
      const char c = s.code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';') break;  // classic for loop
      if (c == ':' && depth == 0) {
        if (s.code[i + 1] == ':' || s.code[i - 1] == ':') {
          if (s.code[i + 1] == ':') ++i;
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    for (std::size_t i = colon + 1; i < close - 1;) {
      if (ident_char(s.code[i]) &&
          (i == 0 || !ident_char(s.code[i - 1]))) {
        const std::string ident = read_ident(s.code, i);
        if (!ident.empty() && names.count(ident) > 0) {
          out->push_back({"", s.line_of(pos), "unordered-iter",
                          "range-for over unordered container '" + ident +
                              "': hash order is not deterministic across "
                              "libraries/runs — iterate a sorted view or "
                              "justify why order cannot reach output"});
          break;
        }
        i += ident.empty() ? 1 : ident.size();
      } else {
        ++i;
      }
    }
  }
  // Explicit iterator loops: `name.begin()` / `expr->name.begin()`.
  for (std::size_t pos : find_words(s.code, "begin")) {
    std::size_t p = pos;
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(s.code[p - 1])) != 0) {
      --p;
    }
    bool member_access = false;
    if (p > 0 && s.code[p - 1] == '.') {
      member_access = true;
      p -= 1;
    } else if (p > 1 && s.code[p - 2] == '-' && s.code[p - 1] == '>') {
      member_access = true;
      p -= 2;
    }
    if (!member_access) continue;
    const std::size_t call = skip_space(s.code, pos + 5);
    if (call >= s.code.size() || s.code[call] != '(') continue;
    std::size_t end = p;
    while (end > 0 && ident_char(s.code[end - 1])) --end;
    const std::string obj = s.code.substr(end, p - end);
    if (!obj.empty() && names.count(obj) > 0) {
      out->push_back({"", s.line_of(pos), "unordered-iter",
                      "iterator over unordered container '" + obj +
                          "': hash order is not deterministic — sort keys "
                          "first or justify order-insensitivity"});
    }
  }
}

void rule_unordered_decl(const UnorderedSurvey& survey,
                         std::vector<Finding>* out) {
  for (const auto& [name, line] : survey.decls) {
    if (line < 0) continue;  // alias-typed: justified at the alias
    out->push_back({"", line, "unordered-decl",
                    "unordered container '" + name +
                        "' — state why hash order cannot leak into "
                        "results (NOLINT-ACDN justification) or use an "
                        "ordered container"});
  }
  for (const auto& [name, line] : survey.aliases) {
    out->push_back({"", line, "unordered-decl",
                    "unordered container alias '" + name +
                        "' — state why hash order cannot leak into "
                        "results (NOLINT-ACDN justification) or use an "
                        "ordered container"});
  }
}

void rule_raw_thread(const Stripped& s, const std::string& label,
                     std::vector<Finding>* out) {
  if (starts_with(label, "src/common/executor")) return;
  for (const std::string& token :
       {std::string("std::thread"), std::string("std::jthread"),
        std::string("std::async")}) {
    for (std::size_t pos : find_words(s.code, token)) {
      out->push_back({"", s.line_of(pos), "raw-thread",
                      token + " outside common/executor — all parallelism "
                              "goes through Executor::global() so chunk "
                              "plans stay deterministic and exceptions "
                              "propagate"});
    }
  }
}

void rule_banned_random(const Stripped& s, const std::string& label,
                        std::vector<Finding>* out) {
  const bool is_rng = starts_with(label, "src/common/rng");
  for (const std::string& fn : {std::string("rand"), std::string("srand")}) {
    for (std::size_t pos : find_words(s.code, fn)) {
      const std::size_t call = skip_space(s.code, pos + fn.size());
      if (call >= s.code.size() || s.code[call] != '(') continue;
      out->push_back({"", s.line_of(pos), "banned-random",
                      fn + "() is process-global and unseeded — draw from "
                           "an explicitly seeded common/rng Rng (fork a "
                           "labeled substream)"});
    }
  }
  if (!is_rng) {
    for (std::size_t pos : find_words(s.code, "random_device")) {
      out->push_back({"", s.line_of(pos), "banned-random",
                      "std::random_device is nondeterministic by design — "
                      "seed a common/rng Rng from the scenario seed "
                      "instead"});
    }
  }
  // std::*_distribution: implementation-defined draw sequences. Allowed
  // only inside common/rng (which wraps them behind portable helpers);
  // poisson_distribution is banned even there (PR 1: libstdc++-specific
  // draws plus a signgam data race).
  for (std::size_t pos = s.code.find("_distribution");
       pos != std::string::npos;
       pos = s.code.find("_distribution", pos + 1)) {
    const std::size_t end = pos + std::string("_distribution").size();
    if (end < s.code.size() && ident_char(s.code[end])) continue;
    std::size_t begin = pos;
    while (begin > 0 && ident_char(s.code[begin - 1])) --begin;
    const std::string name = s.code.substr(begin, end - begin);
    if (name == "_distribution") continue;
    if (name == "poisson_distribution") {
      out->push_back({"", s.line_of(pos), "banned-random",
                      "std::poisson_distribution draws are "
                      "implementation-defined and its lgamma setup races "
                      "on signgam — use Rng::poisson"});
    } else if (!is_rng) {
      out->push_back({"", s.line_of(pos), "banned-random",
                      "std::" + name + " outside common/rng — draw "
                      "sequences are implementation-defined; use the Rng "
                      "helpers (or add one)"});
    }
  }
}

void rule_wall_clock(const Stripped& s, const std::string& label,
                     std::vector<Finding>* out) {
  for (const std::string& token :
       {std::string("system_clock"), std::string("high_resolution_clock"),
        std::string("gettimeofday")}) {
    for (std::size_t pos : find_words(s.code, token)) {
      out->push_back({"", s.line_of(pos), "wall-clock",
                      token + " reads the wall clock — simulation state "
                              "must advance on SimClock/SimTime only"});
    }
  }
  if (!starts_with(label, "src/common/metrics")) {
    for (std::size_t pos : find_words(s.code, "steady_clock")) {
      out->push_back({"", s.line_of(pos), "wall-clock",
                      "steady_clock outside the observability layer "
                      "(common/metrics) — results must not depend on "
                      "elapsed real time"});
    }
  }
  for (const std::string& fn : {std::string("time"), std::string("clock")}) {
    for (std::size_t pos : find_words(s.code, fn)) {
      // Skip member/scoped uses like sim.time() or Clock::time().
      if (pos > 0 && (s.code[pos - 1] == '.' || s.code[pos - 1] == ':' ||
                      s.code[pos - 1] == '>')) {
        continue;
      }
      const std::size_t call = skip_space(s.code, pos + fn.size());
      if (call >= s.code.size() || s.code[call] != '(') continue;
      const std::size_t arg = skip_space(s.code, call + 1);
      const bool c_time_call =
          fn == "time"
              ? (word_at(s.code, arg, "NULL") ||
                 word_at(s.code, arg, "nullptr"))
              : (arg < s.code.size() && s.code[arg] == ')');
      if (!c_time_call) continue;
      out->push_back({"", s.line_of(pos), "wall-clock",
                      fn + "() reads the wall clock — simulation state "
                           "must advance on SimClock/SimTime only"});
    }
  }
}

void rule_parallel_fp_accum(const Stripped& s, const std::string& label,
                            std::vector<Finding>* out) {
  if (starts_with(label, "src/common/executor") ||
      starts_with(label, "src/common/parallel")) {
    return;
  }
  for (std::size_t pos : find_words(s.code, "parallel_for")) {
    const std::size_t open = skip_space(s.code, pos + 12);
    if (open >= s.code.size() || s.code[open] != '(') continue;
    const std::size_t close = match_parens(s.code, open);
    if (close == std::string::npos) continue;
    for (std::size_t i = open; i + 1 < close; ++i) {
      const char c = s.code[i];
      if ((c == '+' || c == '-') && s.code[i + 1] == '=' &&
          (i == 0 || (s.code[i - 1] != c && s.code[i - 1] != '<' &&
                      s.code[i - 1] != '>'))) {
        out->push_back(
            {"", s.line_of(i), "parallel-fp-accum",
             "compound accumulation inside a parallel_for body — "
             "cross-iteration accumulation is schedule-dependent; use "
             "parallel_reduce's chunk-ordered fold, or justify that the "
             "target is per-iteration state"});
      }
    }
  }
}

void rule_failpoint(const Stripped& s, const std::string& label,
                    std::vector<Finding>* out) {
  if (starts_with(label, "src/common/failpoint")) return;
  // Ad-hoc failure modelling: a bernoulli draw whose probability
  // expression names failure-ish state. Injected failures belong behind a
  // named common/failpoint fail point, where they are seeded from the
  // scenario, windowed by day, and trigger-counted into the manifest;
  // an rng draw is invisible to the chaos accounting and perturbs the
  // deterministic stream. Organic world behavior (modeled loss rates)
  // stays on rng with a NOLINT-ACDN justification.
  static const std::vector<std::string> kFailureWords = {
      "fail",  "fault", "outage",  "corrupt", "loss",
      "drop",  "error", "timeout", "servfail"};
  for (std::size_t pos : find_words(s.code, "bernoulli")) {
    const std::size_t open =
        skip_space(s.code, pos + std::string("bernoulli").size());
    if (open >= s.code.size() || s.code[open] != '(') continue;
    const std::size_t close = match_parens(s.code, open);
    if (close == std::string::npos) continue;
    std::string arg = s.code.substr(open, close - open);
    std::transform(arg.begin(), arg.end(), arg.begin(), [](char c) {
      return static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    });
    for (const std::string& word : kFailureWords) {
      if (arg.find(word) == std::string::npos) continue;
      out->push_back({"", s.line_of(pos), "failpoint",
                      "failure probability ('" + word +
                          "') drawn from rng — injected failures go "
                          "through a named common/failpoint fail point "
                          "(seeded, day-windowed, trigger-counted); "
                          "justify if this models organic world "
                          "behavior"});
      break;
    }
  }
}

void rule_unguarded_mutex(const Stripped& s, const std::string& label,
                          std::vector<Finding>* out) {
  // The annotated wrappers (acdn::Mutex & co) are the only sanctioned
  // spelling in src/: a raw std mutex type carries no capability
  // attribute, so -Wthread-safety cannot verify anything about it. The
  // wrappers' own std members are suppressed in place with NOLINT-ACDN.
  if (!starts_with(label, "src/")) return;
  for (const std::string& token :
       {std::string("std::mutex"), std::string("std::shared_mutex"),
        std::string("std::recursive_mutex"),
        std::string("std::timed_mutex")}) {
    for (std::size_t pos : find_words(s.code, token)) {
      out->push_back({"", s.line_of(pos), "unguarded-mutex",
                      token + " is invisible to -Wthread-safety — use the "
                              "annotated acdn::Mutex/SharedMutex "
                              "(common/thread_annotations.h) and mark "
                              "guarded members ACDN_GUARDED_BY"});
    }
  }
}

void rule_unchecked_pack(const Stripped& s, const std::string& label,
                         std::vector<Finding>* out) {
  // Bit-packing by shift-or: `(a << K) | b`. PR 7 shipped a 12-bit
  // beacon-id aliasing bug of exactly this shape — the pack is silently
  // lossy the day an operand outgrows its field. A pack is fine when the
  // operands are range-guarded by an ACDN_CHECK*/ACDN_DCHECK* within a
  // few lines; otherwise it is a finding.
  if (!starts_with(label, "src/")) return;
  constexpr int kGuardRadius = 10;  // lines on either side of the pack
  std::vector<int> guard_lines;
  for (const std::string& fam :
       {std::string("ACDN_CHECK"), std::string("ACDN_DCHECK")}) {
    for (std::size_t pos = s.code.find(fam); pos != std::string::npos;
         pos = s.code.find(fam, pos + 1)) {
      if (pos > 0 && ident_char(s.code[pos - 1])) continue;
      guard_lines.push_back(s.line_of(pos));
    }
  }
  const auto guarded_near = [&](int line) {
    for (const int g : guard_lines) {
      if (g >= line - kGuardRadius && g <= line + kGuardRadius) return true;
    }
    return false;
  };
  std::set<std::size_t> reported;  // statement begins; one finding each
  for (std::size_t pos = s.code.find("<<"); pos != std::string::npos;
       pos = s.code.find("<<", pos + 2)) {
    if (pos + 2 < s.code.size() && s.code[pos + 2] == '<') continue;
    if (pos > 0 && s.code[pos - 1] == '<') continue;
    // Packing shifts move by a literal field width; shifts by an
    // expression (and stream inserts, which shift nothing) are skipped.
    const std::size_t rhs = skip_space(s.code, pos + 2);
    if (rhs >= s.code.size() ||
        std::isdigit(static_cast<unsigned char>(s.code[rhs])) == 0) {
      continue;
    }
    // The enclosing statement: between ';', '{', '}' boundaries.
    std::size_t begin = pos;
    while (begin > 0 && s.code[begin - 1] != ';' &&
           s.code[begin - 1] != '{' && s.code[begin - 1] != '}') {
      --begin;
    }
    std::size_t end = pos;
    while (end < s.code.size() && s.code[end] != ';' &&
           s.code[end] != '{' && s.code[end] != '}') {
      ++end;
    }
    bool has_or = false;
    for (std::size_t i = begin; i < end; ++i) {
      if (s.code[i] != '|') continue;
      const char prev = i > 0 ? s.code[i - 1] : '\0';
      const char after = i + 1 < s.code.size() ? s.code[i + 1] : '\0';
      if (prev == '|' || after == '|' || after == '=') continue;
      has_or = true;
      break;
    }
    if (!has_or) continue;
    if (!reported.insert(begin).second) continue;  // one per statement
    const int line = s.line_of(pos);
    if (guarded_near(line)) continue;
    out->push_back({"", line, "unchecked-pack",
                    "shift-or bit-pack with no ACDN_CHECK*/ACDN_DCHECK* "
                    "range guard nearby — an operand outgrowing its field "
                    "aliases silently (the PR 7 beacon-id bug); check the "
                    "operands' ranges beside the pack or justify why they "
                    "cannot overflow"});
  }
}

void rule_raw_intrinsics(const Stripped& s, const std::string& label,
                         std::vector<Finding>* out) {
  // Vector code belongs behind the common/simd dispatch facade: every
  // kernel there pairs with a scalar reference, a runtime-dispatch table,
  // and the ACDN_SIMD override, and the test wall sweeps vector-vs-scalar
  // bit-identity. An intrinsic spelled anywhere else has none of that —
  // no forced-scalar CI leg exercises it and no sweep proves it matches
  // its scalar twin.
  if (starts_with(label, "src/common/simd")) return;
  const std::string why =
      " outside common/simd — vector kernels live behind the dispatch "
      "facade (scalar reference, runtime dispatch, ACDN_SIMD override, "
      "bit-identity sweep); add the kernel there or justify";

  // Vendor intrinsic headers (<immintrin.h> and family, <arm_neon.h>).
  for (std::size_t pos = s.code.find("#include"); pos != std::string::npos;
       pos = s.code.find("#include", pos + 1)) {
    std::size_t eol = s.code.find('\n', pos);
    if (eol == std::string::npos) eol = s.code.size();
    const std::string line = s.code.substr(pos, eol - pos);
    if (line.find("intrin.h") != std::string::npos ||
        line.find("arm_neon") != std::string::npos ||
        line.find("arm_sve") != std::string::npos) {
      out->push_back({"", s.line_of(pos), "raw-intrinsics",
                      "vendor intrinsic header include" + why});
    }
  }

  // NEON intrinsics end in a lane-type tail (vld1q_f64, vaddq_u32) and
  // the vector types in a lane-count tail (float64x2_t); requiring the
  // tail keeps ordinary identifiers like `vaddr` out.
  static const std::vector<std::string> kNeonLaneTails = {
      "_s8",  "_s16", "_s32", "_s64", "_u8",  "_u16", "_u32",
      "_u64", "_f16", "_f32", "_f64", "_p8",  "_p16"};
  static const std::vector<std::string> kNeonTypeTails = {
      "x2_t", "x4_t", "x8_t", "x16_t"};
  static const std::vector<std::string> kNeonPrefixes = {
      "vld",  "vst",  "vdup", "vadd", "vsub", "vmul", "vdiv",
      "vfma", "vmla", "vand", "vorr", "veor", "vget", "vset",
      "vcvt", "vmax", "vmin", "vabs", "vneg", "vbsl", "vceq",
      "vclt", "vcgt", "vreinterpret"};
  const auto ends_with_any = [](const std::string& id,
                                const std::vector<std::string>& tails) {
    for (const std::string& t : tails) {
      if (id.size() > t.size() &&
          id.compare(id.size() - t.size(), t.size(), t) == 0) {
        return true;
      }
    }
    return false;
  };
  const auto has_neon_prefix = [&](const std::string& id) {
    for (const std::string& p : kNeonPrefixes) {
      if (starts_with(id, p)) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < s.code.size();) {
    if (!ident_char(s.code[i]) || (i > 0 && ident_char(s.code[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < s.code.size() && ident_char(s.code[end])) ++end;
    const std::string id = s.code.substr(i, end - i);
    // x86: _mm_* / _mm256_* calls and the __m128/__m256/__m512 types.
    const bool x86 =
        starts_with(id, "_mm") ||
        (starts_with(id, "__m") && id.size() > 3 &&
         std::isdigit(static_cast<unsigned char>(id[3])) != 0);
    const bool neon =
        (has_neon_prefix(id) && ends_with_any(id, kNeonLaneTails)) ||
        ends_with_any(id, kNeonTypeTails);
    if (x86 || neon) {
      out->push_back({"", s.line_of(i), "raw-intrinsics",
                      "raw SIMD intrinsic '" + id + "'" + why});
    }
    i = end;
  }
}

}  // namespace

// ------------------------------------------------------------ public API

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "unordered-iter",  "unordered-decl",
      "raw-thread",      "banned-random",
      "wall-clock",      "parallel-fp-accum",
      "failpoint",       "unguarded-mutex",
      "unchecked-pack",  "raw-intrinsics",
      "nolint-justification"};
  return kRules;
}

std::vector<std::string> unordered_names(const std::string& text) {
  const Stripped s = strip(text);
  const UnorderedSurvey survey = survey_unordered(s);
  std::vector<std::string> out;
  for (const auto& [name, line] : survey.decls) out.push_back(name);
  return out;
}

std::vector<Finding> lint_file(
    const FileInput& file,
    const std::vector<std::string>& extra_unordered_names) {
  const Stripped s = strip(file.text);
  const UnorderedSurvey survey = survey_unordered(s);
  const std::vector<Directive> directives = parse_directives(s.directives);

  std::set<std::string> names(extra_unordered_names.begin(),
                              extra_unordered_names.end());
  for (const auto& [name, line] : survey.decls) names.insert(name);

  std::vector<Finding> findings;
  rule_unordered_iter(s, names, &findings);
  rule_unordered_decl(survey, &findings);
  rule_raw_thread(s, file.label, &findings);
  rule_banned_random(s, file.label, &findings);
  rule_wall_clock(s, file.label, &findings);
  rule_parallel_fp_accum(s, file.label, &findings);
  rule_failpoint(s, file.label, &findings);
  rule_unguarded_mutex(s, file.label, &findings);
  rule_unchecked_pack(s, file.label, &findings);
  rule_raw_intrinsics(s, file.label, &findings);

  // Suppression: a well-formed directive covers its own line and the next.
  const std::set<std::string> rules(known_rules().begin(),
                                    known_rules().end());
  std::set<std::pair<int, std::string>> suppressed;
  for (const Directive& d : directives) {
    if (rules.count(d.rule) == 0 || d.justification.size() < 5) continue;
    suppressed.insert({d.line, d.rule});
    suppressed.insert({d.line + 1, d.rule});
  }
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (suppressed.count({f.line, f.rule}) > 0) continue;
    f.file = file.label;
    kept.push_back(std::move(f));
  }

  for (const Directive& d : directives) {
    if (rules.count(d.rule) == 0) {
      kept.push_back({file.label, d.line, "nolint-justification",
                      "NOLINT-ACDN names unknown rule '" + d.rule + "'"});
    } else if (d.justification.size() < 5) {
      kept.push_back({file.label, d.line, "nolint-justification",
                      "NOLINT-ACDN(" + d.rule +
                          ") must carry a justification: `// NOLINT-ACDN(" +
                          d.rule + "): <why this is safe>`"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      bool in_testdata = false;
      for (const auto& part : p) {
        if (part == "testdata") in_testdata = true;
      }
      if (in_testdata) continue;
      if (p.extension() == ".h" || p.extension() == ".cpp") {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());

  auto read = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  std::vector<Finding> out;
  for (const fs::path& p : files) {
    FileInput input;
    input.label = fs::relative(p, root).generic_string();
    input.text = read(p);
    std::vector<std::string> extra;
    if (p.extension() == ".cpp") {
      fs::path header = p;
      header.replace_extension(".h");
      if (fs::exists(header)) extra = unordered_names(read(header));
    }
    std::vector<Finding> file_findings = lint_file(input, extra);
    out.insert(out.end(), file_findings.begin(), file_findings.end());
  }
  return out;
}

std::string format(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\t': out += "\\t";  break;
      case '\r': out += "\\r";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"file\": \"" + json_escape(f.file) + "\", \"line\": " +
           std::to_string(f.line) + ", \"rule\": \"" + json_escape(f.rule) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace acdn::lint
