// Repo-specific determinism and safety linter (see docs/ARCHITECTURE.md,
// "Correctness tooling").
//
// The reproduction's headline numbers only hold if every pipeline stage is
// bit-deterministic; three shipped bugs (hash-order iteration feeding
// figures, streaming key-packing truncation, libstdc++-specific
// distribution draws) were all of a *textually recognizable* class. This
// linter encodes those classes as rules and runs over the real tree as a
// ctest, so the next instance fails a PR instead of a golden-CSV diff.
//
// Rules (ids are what NOLINT-ACDN takes):
//   unordered-iter    iteration (range-for or .begin()) over a container
//                     declared std::unordered_* in the same file or its
//                     paired header — hash order must never reach output
//   unordered-decl    every std::unordered_* declaration (or alias) must
//                     state why hash order cannot leak, via NOLINT-ACDN
//   raw-thread        std::thread/jthread/async outside common/executor —
//                     all parallelism goes through the deterministic pool
//   banned-random     rand()/srand()/std::random_device outside common/rng
//                     and std::*_distribution outside common/rng
//                     (std::poisson_distribution is banned everywhere:
//                     draws are implementation-defined, PR 1)
//   wall-clock        time()/clock()/system_clock etc. — simulation code
//                     uses SimClock; steady_clock is allowed only in the
//                     observability layer (common/metrics)
//   parallel-fp-accum compound accumulation (+=, -=) inside a
//                     parallel_for body — cross-iteration accumulation
//                     belongs in parallel_reduce's ordered fold
//   failpoint         rng.bernoulli(...) whose probability expression
//                     names failure-ish state (fail/fault/loss/outage/
//                     corrupt/drop/error/timeout) outside
//                     common/failpoint — injected failures go through a
//                     named fail point (seeded, day-windowed,
//                     trigger-counted); organic loss rates justify via
//                     NOLINT-ACDN
//   unguarded-mutex   raw std::mutex / std::shared_mutex (or recursive/
//                     timed) in src/ — use the capability-annotated
//                     acdn::Mutex/SharedMutex wrappers
//                     (common/thread_annotations.h) so -Wthread-safety
//                     can verify lock discipline
//   unchecked-pack    shift-or bit-pack `(a << K) | b` in src/ with no
//                     ACDN_CHECK*/ACDN_DCHECK* range guard within 10
//                     lines — unguarded packs alias silently when an
//                     operand outgrows its field (the PR 7 beacon-id bug)
//   raw-intrinsics    x86/NEON intrinsics (_mm*/__m128../vld1q_f64/
//                     float64x2_t) or a vendor intrinsic header
//                     (<immintrin.h>, <arm_neon.h>) outside common/simd —
//                     vector kernels live behind the dispatch facade
//                     (scalar reference, runtime dispatch, ACDN_SIMD
//                     override, bit-identity sweep), so a stray intrinsic
//                     is invisible to the forced-scalar CI leg
//   nolint-justification  every NOLINT-ACDN directive must name a known
//                     rule and carry `: <justification>`
//
// Escape hatch: `// NOLINT-ACDN(<rule>): justification` on the finding's
// line or the line directly above suppresses that rule there. The
// justification is mandatory and is itself linted.
#pragma once

#include <string>
#include <vector>

namespace acdn::lint {

struct Finding {
  std::string file;  // label as given (tree scans use repo-relative paths)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// One source file to lint. `label` decides path-based allowlists
/// (e.g. "src/common/rng.h" may use std distributions).
struct FileInput {
  std::string label;
  std::string text;
};

/// Rule ids accepted by NOLINT-ACDN, in stable order.
[[nodiscard]] const std::vector<std::string>& known_rules();

/// Names (variables, members, aliases) declared as unordered containers
/// in `text` — used to seed paired-header lookups.
[[nodiscard]] std::vector<std::string> unordered_names(
    const std::string& text);

/// Lints one file. `extra_unordered_names` extends the unordered-name set
/// (callers pass the paired header's names when linting a .cpp).
[[nodiscard]] std::vector<Finding> lint_file(
    const FileInput& file,
    const std::vector<std::string>& extra_unordered_names = {});

/// Lints every .h/.cpp under root/{src,tests,bench,examples,tools},
/// skipping directories named "testdata". Findings are sorted by
/// (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

/// "file:line: [rule] message" for human and CI output.
[[nodiscard]] std::string format(const Finding& finding);

/// The findings as a JSON array of {file, line, rule, message} objects
/// (sorted order preserved from the input), for machine-readable CI
/// artifacts. Stable: same findings, byte-identical output.
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

}  // namespace acdn::lint
