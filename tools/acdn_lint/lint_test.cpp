// Rule-level coverage for acdn_lint: every rule has a must-fire and a
// must-pass fixture under testdata/, the NOLINT-ACDN escape hatch is
// exercised both ways (valid suppresses, invalid does not), path
// allowlists are pinned, and the real tree is scanned and must be clean.
#include "acdn_lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace acdn::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ACDN_LINT_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& label) {
  return lint_file(FileInput{label, read_fixture(name)});
}

int count_rule(const std::vector<Finding>& findings,
               const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::string dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += format(f) + "\n";
  return out;
}

struct RuleFixture {
  const char* rule;
  const char* stem;
};

constexpr RuleFixture kRuleFixtures[] = {
    {"unordered-iter", "unordered_iter"},
    {"unordered-decl", "unordered_decl"},
    {"raw-thread", "raw_thread"},
    {"banned-random", "banned_random"},
    {"wall-clock", "wall_clock"},
    {"parallel-fp-accum", "parallel_fp_accum"},
    {"failpoint", "failpoint"},
    {"unguarded-mutex", "unguarded_mutex"},
    {"unchecked-pack", "unchecked_pack"},
    {"raw-intrinsics", "raw_intrinsics"},
    // The pre-flat_group aggregation idiom: both hazards in one fixture,
    // with the sorted-vector rewrite as the sanctioned must-pass twin.
    {"unordered-iter", "flat_group"},
    {"parallel-fp-accum", "flat_group"},
    // The day-plan route-cache idiom: generation-tagged lookup-only maps,
    // with the justified NOLINT form as the sanctioned must-pass twin.
    {"unordered-decl", "route_cache"},
};

TEST(LintRules, EveryRuleHasAMustFireFixture) {
  for (const RuleFixture& rf : kRuleFixtures) {
    const auto findings =
        lint_fixture(std::string(rf.stem) + "_fire.cc", "src/sim/fixture.cpp");
    EXPECT_GE(count_rule(findings, rf.rule), 1)
        << rf.stem << "_fire.cc did not fire " << rf.rule << "\n"
        << dump(findings);
  }
}

TEST(LintRules, EveryRuleHasACleanMustPassFixture) {
  for (const RuleFixture& rf : kRuleFixtures) {
    const auto findings =
        lint_fixture(std::string(rf.stem) + "_pass.cc", "src/sim/fixture.cpp");
    EXPECT_TRUE(findings.empty())
        << rf.stem << "_pass.cc must be clean under every rule\n"
        << dump(findings);
  }
}

TEST(LintRules, NolintJustificationFixtures) {
  const auto fire = lint_fixture("nolint_justification_fire.cc",
                                 "src/sim/fixture.cpp");
  EXPECT_GE(count_rule(fire, "nolint-justification"), 2) << dump(fire);
  // A bare directive must not suppress the finding it sits on.
  EXPECT_GE(count_rule(fire, "raw-thread"), 1) << dump(fire);

  const auto pass = lint_fixture("nolint_justification_pass.cc",
                                 "src/sim/fixture.cpp");
  EXPECT_TRUE(pass.empty()) << dump(pass);
}

TEST(LintRules, UnorderedIterSeesPairedHeaderMembers) {
  const std::string header =
      "#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> by_metro_; };\n";
  const std::string source =
      "void S::dump(std::vector<int>* out) {\n"
      "  for (const auto& [m, v] : by_metro_) out->push_back(v);\n"
      "}\n";
  std::vector<std::string> member_names = unordered_names(header);
  ASSERT_EQ(member_names.size(), 1u);
  EXPECT_EQ(member_names[0], "by_metro_");
  const auto findings =
      lint_file(FileInput{"src/sim/s.cpp", source}, member_names);
  EXPECT_EQ(count_rule(findings, "unordered-iter"), 1) << dump(findings);
}

TEST(LintRules, PathAllowlists) {
  // The executor implements the pool: raw std::thread is its job.
  const auto exec = lint_file(
      FileInput{"src/common/executor.cpp", "std::thread t; t.join();\n"});
  EXPECT_EQ(count_rule(exec, "raw-thread"), 0) << dump(exec);

  // common/rng wraps std distributions behind portable helpers...
  const auto rng = lint_file(FileInput{
      "src/common/rng.h", "std::normal_distribution<double> d(0, 1);\n"});
  EXPECT_EQ(count_rule(rng, "banned-random"), 0) << dump(rng);

  // ...except poisson, which is banned everywhere (PR 1).
  const auto poisson = lint_file(FileInput{
      "src/common/rng.h", "std::poisson_distribution<int> p(4.0);\n"});
  EXPECT_EQ(count_rule(poisson, "banned-random"), 1) << dump(poisson);

  // The observability layer may time phases with steady_clock.
  const auto metrics = lint_file(FileInput{
      "src/common/metrics.h",
      "auto t0 = std::chrono::steady_clock::now();\n"});
  EXPECT_EQ(count_rule(metrics, "wall-clock"), 0) << dump(metrics);

  // The same line in simulation code fires.
  const auto sim = lint_file(FileInput{
      "src/sim/world.cpp",
      "auto t0 = std::chrono::steady_clock::now();\n"});
  EXPECT_EQ(count_rule(sim, "wall-clock"), 1) << dump(sim);
}

TEST(LintRules, CommentsAndStringsDoNotFire) {
  const std::string text =
      "// std::thread in prose, rand() too\n"
      "/* std::random_device */\n"
      "const char* kDoc = \"uses std::async and time(nullptr)\";\n";
  const auto findings = lint_file(FileInput{"src/sim/doc.cpp", text});
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(LintRules, DirectiveCoversOwnAndNextLine) {
  const std::string above =
      "// NOLINT-ACDN(raw-thread): stress fixture exercises the pool\n"
      "std::thread t;\n";
  EXPECT_TRUE(lint_file(FileInput{"tests/t.cpp", above}).empty());

  const std::string same_line =
      "std::thread t;  // NOLINT-ACDN(raw-thread): spawn-cost baseline\n";
  EXPECT_TRUE(lint_file(FileInput{"tests/t.cpp", same_line}).empty());

  const std::string too_far =
      "// NOLINT-ACDN(raw-thread): two lines above the use, out of scope\n"
      "\n"
      "std::thread t;\n";
  const auto findings = lint_file(FileInput{"tests/t.cpp", too_far});
  EXPECT_EQ(count_rule(findings, "raw-thread"), 1) << dump(findings);
}

TEST(LintRules, DirectivesInsideStringLiteralsAreInert) {
  // Regression: directives used to be parsed from the raw text, so a
  // NOLINT-ACDN spelled inside a string literal acted as a real
  // directive. Here the quoted directive's (line, line + 1) window
  // covers the std::thread — it must NOT suppress the finding.
  const std::string quoted =
      "const char* kDoc = \"NOLINT-ACDN(raw-thread): quoted, not real\";\n"
      "std::thread t;\n";
  const auto findings = lint_file(FileInput{"src/sim/doc.cpp", quoted});
  EXPECT_EQ(count_rule(findings, "raw-thread"), 1) << dump(findings);

  // ...and a directive-shaped fragment in a raw string literal (the
  // expected-output idiom in linter tests) must not fabricate a
  // nolint-justification finding for its unknown rule.
  const std::string raw =
      "const char* kExpected =\n"
      "    R\"(t.cc:1: NOLINT-ACDN(bogus-rule) names unknown rule)\";\n";
  const auto fabricated = lint_file(FileInput{"src/sim/golden.cpp", raw});
  EXPECT_TRUE(fabricated.empty()) << dump(fabricated);

  // Raw-string delimiters and embedded comment openers must not derail
  // the scanner: the directive after the literal is real and must still
  // suppress, and the // inside the raw string must not eat the line.
  const std::string mixed =
      "auto s = R\"json({\"note\": \"// NOLINT-ACDN(raw-thread): no\"})json\";\n"
      "// NOLINT-ACDN(raw-thread): real directive after a raw literal\n"
      "std::thread t;\n";
  const auto suppressed = lint_file(FileInput{"src/sim/mix.cpp", mixed});
  EXPECT_TRUE(suppressed.empty()) << dump(suppressed);
}

TEST(LintFormat, JsonIsStableAndEscaped) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "raw-thread", "say \"no\" to \\ backslash"},
      {"src/b.cpp", 7, "wall-clock", "plain"},
  };
  EXPECT_EQ(format_json(findings),
            "[\n"
            "  {\"file\": \"src/a.cpp\", \"line\": 3, \"rule\": "
            "\"raw-thread\", \"message\": \"say \\\"no\\\" to \\\\ "
            "backslash\"},\n"
            "  {\"file\": \"src/b.cpp\", \"line\": 7, \"rule\": "
            "\"wall-clock\", \"message\": \"plain\"}\n"
            "]\n");
  EXPECT_EQ(format_json(std::vector<Finding>{}), "[]\n");
}

TEST(LintTree, RealTreeIsClean) {
  const auto findings = lint_tree(ACDN_LINT_SOURCE_ROOT);
  EXPECT_TRUE(findings.empty())
      << "new determinism hazards in the tree:\n"
      << dump(findings);
}

}  // namespace
}  // namespace acdn::lint
