// acdn_lint CLI: `acdn_lint [--json] <repo-root> [file...]`.
//
// With only a root, lints every .h/.cpp under {src,tests,bench,examples,
// tools} (skipping testdata fixtures) and exits 1 if anything fires —
// this is the AcdnLint ctest. Extra arguments lint individual files
// (labels are taken relative to the root) for editor/pre-commit use.
// `--json` replaces the human lines with a stable JSON array of
// {file, line, rule, message} objects (CI uploads it as an artifact).
//
// Exit codes: 0 clean, 1 findings, 2 usage error or unreadable root.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acdn_lint/lint.h"

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::cerr << "usage: acdn_lint [--json] <repo-root> [file...]\n";
    return 2;
  }
  const std::string root = args[0];
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "acdn_lint: not a directory: " << root << "\n";
    return 2;
  }
  std::vector<acdn::lint::Finding> findings;
  if (args.size() == 1) {
    findings = acdn::lint::lint_tree(root);
  } else {
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::filesystem::path p(args[i]);
      acdn::lint::FileInput input;
      std::error_code ec;
      const auto rel = std::filesystem::relative(p, root, ec);
      input.label = ec ? p.generic_string() : rel.generic_string();
      input.text = read_file(p);
      std::vector<std::string> extra;
      if (p.extension() == ".cpp") {
        std::filesystem::path header = p;
        header.replace_extension(".h");
        if (std::filesystem::exists(header)) {
          extra = acdn::lint::unordered_names(read_file(header));
        }
      }
      for (auto& f : acdn::lint::lint_file(input, extra)) {
        findings.push_back(std::move(f));
      }
    }
  }
  if (json) {
    std::cout << acdn::lint::format_json(findings);
    return findings.empty() ? 0 : 1;
  }
  for (const auto& f : findings) {
    std::cout << acdn::lint::format(f) << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size()
              << " finding(s). Fix the hazard or annotate with "
                 "`// NOLINT-ACDN(<rule>): <justification>` "
                 "(docs/ARCHITECTURE.md, Correctness tooling).\n";
    return 1;
  }
  return 0;
}
