// Must-fire: unseeded/process-global/implementation-defined randomness.
// rand() is unseeded global state, random_device is nondeterministic by
// design, and std::*_distribution draw sequences differ across standard
// libraries (std::poisson_distribution additionally races on signgam).
#include <cstdlib>
#include <random>

double jitter() {
  std::random_device dev;
  std::mt19937_64 engine(dev());
  std::normal_distribution<double> noise(0.0, 1.0);
  std::poisson_distribution<int> arrivals(4.0);
  return double(rand()) + noise(engine) + double(arrivals(engine));
}
