// Must-pass: all randomness flows through an explicitly seeded
// common/rng Rng; substreams are forked by label so draws in one module
// never perturb another's.
#include <cstdint>
#include <string_view>

namespace acdn {
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  Rng fork(std::string_view label) const;
  double normal(double mean, double stddev);
  int poisson(double mean);
};
}  // namespace acdn

double jitter(std::uint64_t seed) {
  acdn::Rng rng = acdn::Rng(seed).fork("jitter");
  return rng.normal(0.0, 1.0) + double(rng.poisson(4.0));
}
