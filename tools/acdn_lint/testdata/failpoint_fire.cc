// Must-fire: ad-hoc injected failures drawn from the rng stream. A
// failure probability belongs behind a named common/failpoint fail point
// so it is seeded from the scenario, windowed by day, and trigger-counted
// into the run manifest; an rng draw is invisible to chaos accounting and
// perturbs the deterministic stream for everything drawn after it.
#include <cstdint>

namespace acdn {
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  bool bernoulli(double p);
};
}  // namespace acdn

bool row_survives(acdn::Rng& rng, double drop_prob) {
  return !rng.bernoulli(drop_prob);
}

bool resolver_answers(acdn::Rng& rng, double timeout_fraction) {
  return !rng.bernoulli(timeout_fraction);
}
