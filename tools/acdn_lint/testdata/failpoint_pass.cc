// Must-pass: injected failures flow through a named fail point; organic
// modeled loss stays on rng with a mandatory justification; ordinary
// probability draws (sampling, presence) never trip the rule.
#include <cstdint>
#include <optional>
#include <string_view>

namespace acdn {
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  bool bernoulli(double p);
};
struct Fault {};
class FailPoint {
 public:
  explicit FailPoint(std::string_view path);
  std::optional<Fault> fire(int day, std::uint64_t coordinate) const;
};
}  // namespace acdn

bool fetch_delivers(acdn::Rng& rng, int day, std::uint64_t url_id,
                    double fetch_loss_prob) {
  static const acdn::FailPoint fault("beacon/http_fetch");
  if (fault.fire(day, url_id)) return false;  // injected, counted
  // NOLINT-ACDN(failpoint): fetch_loss_prob models organic browser loss
  return !rng.bernoulli(fetch_loss_prob);
}

bool beacon_sampled(acdn::Rng& rng, double beacon_sampling) {
  return rng.bernoulli(beacon_sampling);
}
