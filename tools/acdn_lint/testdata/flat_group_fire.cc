// Must-fire: the node-map aggregation idiom that common/flat_group.h
// replaces. Iterating the unordered_map leaks hash order into results,
// and the compound += inside the parallel_for body makes the sum depend
// on the thread schedule.
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace acdn {
class Executor {
 public:
  static Executor& global();
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, int threads, Fn fn);
};
}  // namespace acdn

struct GroupTotals {
  std::unordered_map<unsigned, double> rtt_by_group;
};

double fold_groups(const GroupTotals& totals, std::vector<double>* out) {
  double sum = 0.0;
  for (const auto& [group, rtt] : totals.rtt_by_group) {
    out->push_back(rtt);
    sum += rtt;
  }
  return sum;
}

double total_rtt(const std::vector<double>& rtts, int threads) {
  double total = 0.0;
  acdn::Executor::global().parallel_for(
      0, rtts.size(), threads, [&](std::size_t i) { total += rtts[i]; });
  return total;
}
