// Must-pass: the sorted flat-vector group-by from common/flat_group.h.
// Rows append to a plain vector, parallel_sort orders them by a total
// order (sequence tie-breaker), and the serial run walk accumulates in
// deterministic index order — no hash iteration, no cross-iteration
// accumulation inside a parallel_for body, no suppressions needed.
#include <cstddef>
#include <span>
#include <vector>

namespace acdn {

struct Run {
  std::size_t begin = 0;
  std::size_t end = 0;
};

template <typename T, typename Less>
void parallel_sort(std::span<T> v, int threads, Less less);

template <typename T, typename Less, typename Eq, typename Fn>
void sort_group_by(std::span<T> v, int threads, Less less, Eq eq, Fn fn);

template <typename Key, typename Value>
class FlatMap {
 public:
  void append(Key key, Value value);
  const std::vector<std::pair<Key, Value>>& entries() const;
};

}  // namespace acdn

struct RttRow {
  unsigned group = 0;
  unsigned seq = 0;
  double rtt = 0.0;
};

acdn::FlatMap<unsigned, double> group_totals(std::vector<RttRow>& rows,
                                             int threads) {
  acdn::FlatMap<unsigned, double> totals;
  acdn::sort_group_by(
      std::span<RttRow>(rows), threads,
      [](const RttRow& a, const RttRow& b) {
        return a.group < b.group || (a.group == b.group && a.seq < b.seq);
      },
      [](const RttRow& a, const RttRow& b) { return a.group == b.group; },
      [&](acdn::Run run) {
        double total = 0.0;
        for (std::size_t i = run.begin; i < run.end; ++i) {
          total += rows[i].rtt;  // serial run walk, ascending index order
        }
        totals.append(rows[run.begin].group, total);
      });
  return totals;
}
