// Must-fire: malformed escape hatches. A directive naming an unknown
// rule, and a directive with no justification — which also must NOT
// suppress the raw-thread finding it is attached to.
#include <thread>

// NOLINT-ACDN(threads-are-fine): misspelled rule never suppresses
void spawn_worker();

void run() {
  std::thread t(spawn_worker);  // NOLINT-ACDN(raw-thread)
  t.join();
}
