// Must-pass: a well-formed escape hatch — known rule, colon, and a real
// justification — suppresses exactly the finding it annotates.
#include <thread>

void spawn_worker();

void run() {
  // NOLINT-ACDN(raw-thread): measures bare spawn cost against the pool
  std::thread t(spawn_worker);
  t.join();
}
