// Must-fire: cross-iteration accumulation inside a parallel_for body.
// Even with an atomic or a lock, the accumulation order would depend on
// the schedule; floating-point sums then differ run to run.
#include <cstddef>
#include <vector>

namespace acdn {
class Executor {
 public:
  static Executor& global();
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, int threads, Fn fn);
};
}  // namespace acdn

double total_volume(const std::vector<double>& rows, int threads) {
  double total = 0.0;
  acdn::Executor::global().parallel_for(
      0, rows.size(), threads, [&](std::size_t i) { total += rows[i]; });
  return total;
}
