// Must-pass: parallel_for writes per-index slots; sums go through
// parallel_reduce, whose shards fold in ascending chunk order so the
// result is bit-identical for any thread count.
#include <cstddef>
#include <vector>

namespace acdn {
class Executor {
 public:
  static Executor& global();
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, int threads, Fn fn);
  template <typename Shard, typename Fn, typename Combine>
  Shard parallel_reduce(std::size_t begin, std::size_t end, int threads,
                        std::size_t grain, Shard init, Fn fn,
                        Combine combine);
};
}  // namespace acdn

double total_volume(const std::vector<double>& rows, int threads) {
  std::vector<double> doubled(rows.size());
  acdn::Executor::global().parallel_for(
      0, rows.size(), threads,
      [&](std::size_t i) { doubled[i] = rows[i] * 2.0; });
  return acdn::Executor::global().parallel_reduce(
      0, doubled.size(), threads, 512, 0.0,
      [&](double& shard, std::size_t i) { shard += doubled[i]; },
      [](double& acc, double&& shard) { acc += shard; });
}
