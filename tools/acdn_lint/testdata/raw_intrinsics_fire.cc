// Must-fire: raw vector intrinsics outside common/simd. This kernel has
// no scalar reference, no dispatch entry, and no ACDN_SIMD override — the
// forced-scalar CI leg never exercises it, so nothing proves it is
// bit-identical to the code it replaced.
#include <immintrin.h>

double pair_sum(const double* p) {
  __m128d v = _mm_loadu_pd(p);
  __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

#if defined(__aarch64__)
#include <arm_neon.h>

double pair_sum_neon(const double* p) {
  float64x2_t v = vld1q_f64(p);
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}
#endif
