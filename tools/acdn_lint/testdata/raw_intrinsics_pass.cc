// Must-pass twin: the same work routed through the common/simd facade,
// which owns the dispatch table, the scalar reference, and the ACDN_SIMD
// override — callers stay intrinsic-free. Plus the justified-NOLINT form
// for the rare case that cannot live in the facade.
#include <cstdint>
#include <span>

#include "common/simd.h"

bool keys_sorted(std::span<const std::uint64_t> keys) {
  return acdn::simd::is_sorted_u64(keys);
}

// NOLINT-ACDN(raw-intrinsics): prefetch hint only — no data-path result
void warm(const void* p) { __builtin_prefetch(p); }
