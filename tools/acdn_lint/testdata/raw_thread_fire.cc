// Must-fire: hand-rolled threading outside common/executor. Spawn order
// and join timing are schedule-dependent, and exceptions thrown on the
// spawned thread terminate the process.
#include <future>
#include <thread>
#include <vector>

void process(std::vector<double>* rows) {
  std::thread worker([rows] { rows->push_back(1.0); });
  worker.join();
  auto f = std::async([] { return 2.0; });
  rows->push_back(f.get());
}
