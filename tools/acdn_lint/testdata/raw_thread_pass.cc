// Must-pass: parallelism through the deterministic pool. Chunk plans
// depend only on (n, grain), results are bit-identical for any thread
// count, and a throwing body rethrows on the submitting thread.
#include <cstddef>
#include <vector>

namespace acdn {
class Executor {
 public:
  static Executor& global();
  void parallel_for(std::size_t, std::size_t, int, void (*)(std::size_t));
};
}  // namespace acdn

void process(std::vector<double>* rows, int threads) {
  rows->resize(64);
  acdn::Executor::global().parallel_for(
      0, rows->size(), threads, +[](std::size_t) {});
}
