// Must-fire: the day-plan route-cache idiom written WITHOUT hash-order
// justifications — a generation-tagged walk memo and a pre-warmed unicast
// route map, both unordered and both silent about why hash order is safe.
#include <cstdint>
#include <unordered_map>

struct CachedRoute {
  std::uint64_t generation = 0;
  int front_end = -1;
};

class DayRouteCache {
 public:
  int lookup(std::uint64_t key, std::uint64_t generation) {
    auto it = routes_.find(key);
    if (it != routes_.end() && it->second.generation == generation) {
      return it->second.front_end;
    }
    return -1;
  }

 private:
  std::unordered_map<std::uint64_t, CachedRoute> routes_;
  std::unordered_map<std::uint64_t, int> unicast_warm_;
};
