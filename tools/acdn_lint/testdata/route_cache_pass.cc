// Must-pass: the sanctioned day-plan route-cache idiom — unordered maps
// used as keyed memo lookups only (found by key, never iterated), each
// declaration carrying its hash-order justification.
#include <cstdint>
#include <unordered_map>

struct CachedRoute {
  std::uint64_t generation = 0;
  int front_end = -1;
};

class DayRouteCache {
 public:
  int lookup(std::uint64_t key, std::uint64_t generation) {
    auto it = routes_.find(key);
    if (it != routes_.end() && it->second.generation == generation) {
      return it->second.front_end;
    }
    return -1;
  }

 private:
  // Generation tags invalidate stale entries in place: a lookup whose tag
  // mismatches re-resolves, so no iteration-order-dependent sweep exists.
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  std::unordered_map<std::uint64_t, CachedRoute> routes_;
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  std::unordered_map<std::uint64_t, int> unicast_warm_;
};
