// Must-fire: shift-or bit-pack with no range guard in sight. The day
// `metro` outgrows its 20-bit field this aliases another key silently —
// the exact shape of the PR 7 beacon-id bug.
#include <cstdint>

std::uint64_t pack_key(std::uint64_t as, std::uint64_t metro) {
  return (as << 20) | metro;
}
