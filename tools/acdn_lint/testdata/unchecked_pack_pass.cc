// Must-pass twin: the same pack with its operands range-guarded beside
// it (the sanctioned idiom), plus shift shapes the rule must skip.
#include <cstdint>

#include "common/check.h"

std::uint64_t pack_key(std::uint64_t as, std::uint64_t metro) {
  ACDN_DCHECK_LT(as, 1ull << 44);
  ACDN_DCHECK_LT(metro, 1ull << 20);
  return (as << 20) | metro;
}

std::uint64_t join_halves(std::uint64_t hi, std::uint64_t lo, int width) {
  return (hi << width) | lo;  // non-literal width is not the pack shape
}
