// Must-fire: raw std mutex types in src/ carry no capability attribute,
// so -Wthread-safety cannot verify anything about the state they guard.
#include <mutex>
#include <shared_mutex>

struct RouteCache {
  std::mutex m;
  std::shared_mutex table_mutex;
};

struct ReentrantQueue {
  std::recursive_mutex m;
};
