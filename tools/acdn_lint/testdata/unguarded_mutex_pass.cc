// Must-pass twin: the capability-annotated wrappers, with guarded
// members marked, plus the justified-NOLINT form for unavoidable raw
// mutexes (FFI, wrapper internals).
#include <map>

#include "common/thread_annotations.h"

struct RouteCache {
  acdn::Mutex m;
  std::map<int, int> routes ACDN_GUARDED_BY(m);

  acdn::SharedMutex table_mutex;
  std::map<int, int> table ACDN_GUARDED_BY(table_mutex);

  // NOLINT-ACDN(unguarded-mutex): handed to a C callback (raw type only)
  std::mutex interop_m;
};
