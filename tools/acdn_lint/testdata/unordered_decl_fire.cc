// Must-fire: unordered declarations (member, local, and alias) with no
// statement of why hash order cannot leak into results.
#include <unordered_map>
#include <unordered_set>

using FeSet = std::unordered_set<int>;

struct RouteState {
  std::unordered_map<int, int> selected;
};

inline int lookup(int key) {
  std::unordered_map<int, int> local;
  local[key] = 1;
  return local[key];
}
