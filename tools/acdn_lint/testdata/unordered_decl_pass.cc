// Must-pass: every unordered declaration (and alias definition) carries a
// hash-order justification; declarations through a justified alias
// inherit it.
#include <string>
#include <unordered_map>

template <typename V>
// NOLINT-ACDN(unordered-decl): per-name shard state, folded into a
using NameMap = std::unordered_map<std::string, V>;  // name-sorted map

struct Shard {
  NameMap<unsigned long long> counters;
  NameMap<double> gauges;
};

struct Resolver {
  // NOLINT-ACDN(unordered-decl): lookup-only cache; never iterated
  std::unordered_map<unsigned long long, int> route_cache;
};
