// Must-fire: hash-order iteration feeding an exported vector — the bug
// class that shipped in PR 1 (figure rows depended on unordered_map
// iteration order).
#include <unordered_map>
#include <vector>

struct CatchmentExport {
  std::unordered_map<int, double> share_by_fe;

  void dump(std::vector<double>* out) const {
    for (const auto& [fe, share] : share_by_fe) {
      out->push_back(share);
    }
  }

  double first() const {
    return share_by_fe.begin()->second;
  }
};
