// Must-pass: the sanctioned patterns. Either iterate a sorted key view
// (annotating the collection pass, which is order-insensitive), or keep
// the container lookup-only.
#include <algorithm>
#include <unordered_map>
#include <vector>

struct CatchmentExport {
  // NOLINT-ACDN(unordered-decl): keys are sorted below before any export
  std::unordered_map<int, double> share_by_fe;

  void dump(std::vector<double>* out) const {
    std::vector<int> keys;
    keys.reserve(share_by_fe.size());
    // NOLINT-ACDN(unordered-iter): collects keys only; sorted before use
    for (const auto& [fe, share] : share_by_fe) keys.push_back(fe);
    std::sort(keys.begin(), keys.end());
    for (int fe : keys) out->push_back(share_by_fe.at(fe));
  }

  double lookup(int fe) const {
    auto it = share_by_fe.find(fe);
    return it == share_by_fe.end() ? 0.0 : it->second;
  }
};
