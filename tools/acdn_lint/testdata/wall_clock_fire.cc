// Must-fire: wall-clock reads in simulation code. Results must be a pure
// function of (config, seed); elapsed real time may only be observed by
// the metrics layer.
#include <chrono>
#include <ctime>

double sample_window() {
  const auto t0 = std::chrono::system_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  const std::time_t wall = time(nullptr);
  (void)t0;
  (void)t1;
  return double(wall) + double(clock());
}
