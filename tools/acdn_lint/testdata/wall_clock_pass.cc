// Must-pass: simulated time only. SimTime/SimClock advance with the
// scenario's day loop, so a run's timing is reproducible bit for bit.
namespace acdn {
struct SimTime {
  int day = 0;
  double seconds = 0.0;
};
}  // namespace acdn

double sample_window(const acdn::SimTime& now, double ttl_seconds) {
  return now.day * 86400.0 + now.seconds + ttl_seconds;
}
