#!/usr/bin/env bash
# Coverage gate for the CI coverage leg.
#
# Expects a build tree configured with the "coverage" preset (clang +
# -fprofile-instr-generate -fcoverage-mapping) whose tests already ran
# with LLVM_PROFILE_FILE="<build>/profiles/%p.profraw". Merges the raw
# profiles, writes an lcov trace (the CI artifact), and fails if line
# coverage over src/common + src/core drops below the floor recorded in
# COVERAGE_FLOOR at the repository root.
#
# Usage: tools/coverage_gate.sh [build-dir] [floor-file]
set -euo pipefail

build="${1:-build-coverage}"
floor_file="${2:-COVERAGE_FLOOR}"

profdata="$build/coverage.profdata"
llvm-profdata merge -sparse "$build"/profiles/*.profraw -o "$profdata"

# Every test binary contributes its mapping; the first is the primary
# object, the rest ride along as -object arguments.
objects=()
for bin in "$build"/tests/*_test; do
  [ -x "$bin" ] && objects+=("$bin")
done
if [ "${#objects[@]}" -eq 0 ]; then
  echo "coverage_gate: no test binaries under $build/tests" >&2
  exit 1
fi
object_args=("${objects[0]}")
for bin in "${objects[@]:1}"; do
  object_args+=(-object "$bin")
done

# Full lcov trace for the artifact (whole tree), then a summary scoped to
# the gated directories.
llvm-cov export -format=lcov -instr-profile="$profdata" \
  "${object_args[@]}" > "$build/coverage.lcov"
llvm-cov export -summary-only -format=text \
  -instr-profile="$profdata" "${object_args[@]}" \
  src/common src/core > "$build/coverage_summary.json"

floor="$(grep -v '^#' "$floor_file" | head -1 | tr -d '[:space:]')"
python3 - "$floor" "$build/coverage_summary.json" <<'EOF'
import json, sys
floor = float(sys.argv[1])
with open(sys.argv[2]) as f:
    totals = json.load(f)["data"][0]["totals"]["lines"]
percent = totals["percent"]
print(f"src/common + src/core line coverage: {percent:.2f}% "
      f"({totals['covered']}/{totals['count']} lines, floor {floor:.2f}%)")
if percent < floor:
    print(f"coverage_gate: FAIL — {percent:.2f}% is below the recorded "
          f"floor of {floor:.2f}%", file=sys.stderr)
    sys.exit(1)
EOF
