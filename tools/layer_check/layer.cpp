#include "layer_check/layer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace acdn::layer {

namespace {

/// The declared layering. Order within deps mirrors the
/// target_link_libraries call in the module's CMakeLists.txt; the check
/// itself uses the transitive closure, like linking does.
LayerConfig build_default_config() {
  LayerConfig config;
  config.modules = {
      {"stats", {}},
      {"common", {"stats"}},
      {"geo", {"common"}},
      {"net", {"common"}},
      {"latency", {"common"}},
      {"topology", {"geo", "common"}},
      {"routing", {"topology", "common"}},
      {"workload", {"topology", "latency", "net", "geo", "common"}},
      {"cdn", {"routing", "topology", "net", "geo", "workload", "common"}},
      {"load", {"cdn", "workload", "routing", "common"}},
      {"dns", {"workload", "cdn", "geo", "common"}},
      {"beacon",
       {"cdn", "dns", "workload", "latency", "routing", "common"}},
      {"analysis",
       {"beacon", "workload", "cdn", "stats", "geo", "common"}},
      {"core", {"analysis", "beacon", "dns", "stats", "common"}},
      {"atlas", {"cdn", "routing", "latency", "common"}},
      {"sim",
       {"core", "beacon", "cdn", "dns", "workload", "routing", "topology",
        "latency", "atlas", "common"}},
      {"report", {"beacon", "stats", "common"}},
  };
  config.waivers = {
      // stats sits below common in the link order, but its .cpp files
      // throw the shared ConfigError. error.h is a header-only leaf with
      // no further includes, so the edge links fine and cannot recurse.
      {"stats", "common/error.h",
       "header-only error type shared by every layer"},
  };
  return config;
}

}  // namespace

const LayerConfig& default_config() {
  static const LayerConfig* config = new LayerConfig(build_default_config());
  return *config;
}

std::vector<IncludeRef> quoted_includes(const std::string& text) {
  // Line-oriented scan with just enough lexing to ignore directives in
  // /* */ blocks, line comments, and string literals. An #include is
  // only real when the '#' is the first non-space character.
  std::vector<IncludeRef> out;
  bool in_block_comment = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    if (in_block_comment) {
      const std::size_t close = line.find("*/");
      if (close == std::string::npos) continue;
      in_block_comment = false;
      i = close + 2;
    }
    // First non-space character from offset i.
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    if (i < line.size() && line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') continue;
      if (line[i + 1] == '*') {
        const std::size_t close = line.find("*/", i + 2);
        if (close == std::string::npos) {
          in_block_comment = true;
          continue;
        }
        // A one-line block comment before the directive: rescan after.
        i = close + 2;
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t')) {
          ++i;
        }
      }
    }
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::string kw = "include";
    if (line.compare(i, kw.size(), kw) != 0) continue;
    i += kw.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] != '"') continue;
    const std::size_t close = line.find('"', i + 1);
    if (close == std::string::npos) continue;
    out.push_back({line_no, line.substr(i + 1, close - i - 1)});
  }
  return out;
}

Checker::Checker(LayerConfig config) : config_(std::move(config)) {
  waiver_used_.assign(config_.waivers.size(), false);

  std::set<std::string> names;
  for (const Module& m : config_.modules) {
    if (!names.insert(m.name).second) {
      config_violations_.push_back(
          {"", 0, "config-cycle",
           "module '" + m.name + "' declared twice in the layer DAG"});
    }
  }
  for (const Module& m : config_.modules) {
    for (const std::string& dep : m.deps) {
      if (names.count(dep) == 0) {
        config_violations_.push_back(
            {"", 0, "config-cycle",
             "module '" + m.name + "' depends on undeclared module '" +
                 dep + "'"});
      }
    }
  }
  if (!config_violations_.empty()) return;

  // Cycle check: iterative DFS with colors over the declared edges.
  std::map<std::string, const Module*> by_name;
  for (const Module& m : config_.modules) by_name.emplace(m.name, &m);
  enum Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const Module& m : config_.modules) color[m.name] = kWhite;
  for (const Module& root : config_.modules) {
    if (color[root.name] != kWhite) continue;
    std::vector<std::pair<const Module*, std::size_t>> stack;
    stack.emplace_back(&root, 0);
    color[root.name] = kGray;
    while (!stack.empty()) {
      auto& [mod, next] = stack.back();
      if (next >= mod->deps.size()) {
        color[mod->name] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::string& dep = mod->deps[next++];
      if (color[dep] == kGray) {
        config_violations_.push_back(
            {"", 0, "config-cycle",
             "layer DAG cycle through '" + mod->name + "' -> '" + dep +
                 "' — layers must be acyclic"});
        return;
      }
      if (color[dep] == kWhite) {
        color[dep] = kGray;
        stack.emplace_back(by_name.at(dep), 0);
      }
    }
  }
}

std::vector<Violation> Checker::check_file(const std::string& label,
                                           const std::string& text) {
  std::vector<Violation> out;
  if (!config_violations_.empty()) return out;

  // Only src/<module>/... files are layered. The umbrella header at the
  // src root and anything outside src/ (tests, tools) may include
  // freely — they sit above every layer by construction.
  const std::string prefix = "src/";
  if (label.rfind(prefix, 0) != 0) return out;
  const std::size_t module_end = label.find('/', prefix.size());
  if (module_end == std::string::npos) return out;
  const std::string module = label.substr(prefix.size(),
                                          module_end - prefix.size());

  std::map<std::string, const Module*> by_name;
  for (const Module& m : config_.modules) by_name.emplace(m.name, &m);
  const auto self = by_name.find(module);
  if (self == by_name.end()) {
    out.push_back({label, 0, "unknown-module",
                   "directory src/" + module +
                       " is not in the layer DAG — add it to "
                       "default_config() with its dependencies"});
    return out;
  }

  // Transitive dependency closure of this module.
  std::set<std::string> allowed;
  std::vector<const Module*> frontier = {self->second};
  while (!frontier.empty()) {
    const Module* m = frontier.back();
    frontier.pop_back();
    for (const std::string& dep : m->deps) {
      if (allowed.insert(dep).second) frontier.push_back(by_name.at(dep));
    }
  }

  for (const IncludeRef& inc : quoted_includes(text)) {
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = inc.path.substr(0, slash);
    if (target == module) continue;
    if (by_name.count(target) == 0) {
      out.push_back({label, inc.line, "unknown-module",
                     "#include \"" + inc.path +
                         "\" names no module in the layer DAG"});
      continue;
    }
    if (allowed.count(target) > 0) continue;
    bool waived = false;
    for (std::size_t w = 0; w < config_.waivers.size(); ++w) {
      if (config_.waivers[w].module == module &&
          config_.waivers[w].include == inc.path) {
        waiver_used_[w] = true;
        waived = true;
        break;
      }
    }
    if (waived) continue;
    // Is this the dangerous direction — does the target (transitively)
    // depend on us?
    std::set<std::string> target_closure;
    std::vector<const Module*> tf = {by_name.at(target)};
    while (!tf.empty()) {
      const Module* m = tf.back();
      tf.pop_back();
      for (const std::string& dep : m->deps) {
        if (target_closure.insert(dep).second) {
          tf.push_back(by_name.at(dep));
        }
      }
    }
    const bool upward = target_closure.count(module) > 0;
    out.push_back(
        {label, inc.line, "undeclared-dependency",
         "#include \"" + inc.path + "\": " + module +
             (upward ? " -> " + target +
                           " is an upward include (" + target +
                           " already layers above " + module +
                           ") — invert the dependency or move the shared "
                           "code below both"
                     : " -> " + target +
                           " is not a declared layer edge — add it to "
                           "default_config() alongside the "
                           "target_link_libraries edge, or waive it with "
                           "a justification")});
  }
  return out;
}

std::vector<Violation> Checker::finish() const {
  std::vector<Violation> out;
  if (!config_violations_.empty()) return out;
  for (std::size_t w = 0; w < config_.waivers.size(); ++w) {
    if (waiver_used_[w]) continue;
    const Waiver& waiver = config_.waivers[w];
    out.push_back({"", 0, "stale-waiver",
                   "waiver (" + waiver.module + ", " + waiver.include +
                       ") matched nothing — the debt it documented is "
                       "gone, delete the waiver"});
  }
  return out;
}

std::vector<Violation> check_tree(const std::string& root) {
  namespace fs = std::filesystem;
  Checker checker(default_config());
  std::vector<Violation> out = checker.config_violations();
  if (!out.empty()) return out;

  std::vector<fs::path> files;
  const fs::path base = fs::path(root) / "src";
  if (fs::exists(base)) {
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      if (p.extension() == ".h" || p.extension() == ".cpp") {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string label = fs::relative(p, root).generic_string();
    std::vector<Violation> file_violations =
        checker.check_file(label, buf.str());
    out.insert(out.end(), file_violations.begin(), file_violations.end());
  }
  std::vector<Violation> stale = checker.finish();
  out.insert(out.end(), stale.begin(), stale.end());

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.kind) <
                     std::tie(b.file, b.line, b.kind);
            });
  return out;
}

std::string format(const Violation& violation) {
  return violation.file + ":" + std::to_string(violation.line) + ": [" +
         violation.kind + "] " + violation.message;
}

}  // namespace acdn::layer
