// Include-layer analyzer (see docs/ARCHITECTURE.md, "Correctness
// tooling").
//
// src/ is layered: each module directory may include headers only from
// itself and from the modules below it in the declared DAG, which
// mirrors the CMake link graph (src/<module>/CMakeLists.txt). An upward
// include compiles fine today — headers are all on one include path —
// and quietly inverts the layering until the link step or a future
// refactor breaks; PR 2 had to flip the common → stats boundary by hand
// after exactly that. This tool parses the quoted #include edges across
// src/ and fails CI on any edge the DAG does not allow.
//
// Violation kinds:
//   unknown-module         include's first path component is not a
//                          declared module (typo, or a new directory not
//                          yet added to default_config())
//   undeclared-dependency  the edge is not in the includer's transitive
//                          dependency closure; the message says when the
//                          reverse edge exists (an upward include — the
//                          dangerous case)
//   config-cycle           the declared DAG itself has a cycle or names
//                          an unknown module (configuration bug)
//   stale-waiver           a waiver matched no include in the tree —
//                          the debt it documented is gone, delete it
//
// Amending the DAG: a new module or a new downward edge is added to
// default_config() in layer.cpp, in the same change that adds the
// target_link_libraries edge. A deliberate exception (and the reasons
// had better be good) is a Waiver naming the exact (module, include)
// pair plus a justification; waivers that stop matching fail CI as
// stale.
#pragma once

#include <string>
#include <vector>

namespace acdn::layer {

/// One module directory under src/ and the modules it may include
/// (directly; the check uses the transitive closure, like linking).
struct Module {
  std::string name;
  std::vector<std::string> deps;
};

/// A deliberate exception: `module`'s files may include exactly
/// `include` even though the DAG forbids it. Must stay justified.
struct Waiver {
  std::string module;
  std::string include;
  std::string justification;
};

struct LayerConfig {
  std::vector<Module> modules;
  std::vector<Waiver> waivers;
};

/// The repo's declared layering, mirroring src/*/CMakeLists.txt.
[[nodiscard]] const LayerConfig& default_config();

struct Violation {
  std::string file;  // label as given (tree scans use repo-relative paths)
  int line = 0;      // 1-based; 0 for config/waiver-level violations
  std::string kind;
  std::string message;
};

/// A quoted #include directive, with its 1-based line.
struct IncludeRef {
  int line = 0;
  std::string path;
};

/// The quoted includes of one file, comment-aware: directives inside
/// // and /* */ comments or string literals do not count.
[[nodiscard]] std::vector<IncludeRef> quoted_includes(
    const std::string& text);

/// Checks files one at a time against a config, tracking waiver use so
/// stale waivers can be reported at the end.
class Checker {
 public:
  explicit Checker(LayerConfig config);

  /// Violations of the config itself (cycles, unknown dep names).
  /// Non-empty config violations make every edge check meaningless, so
  /// callers should stop there.
  [[nodiscard]] const std::vector<Violation>& config_violations() const {
    return config_violations_;
  }

  /// Layer violations of one file. `label` must be the repo-relative
  /// path ("src/<module>/<file>"); files outside src/ or directly at the
  /// src root (the umbrella header) are exempt and return nothing.
  [[nodiscard]] std::vector<Violation> check_file(const std::string& label,
                                                 const std::string& text);

  /// Call once after every file: stale-waiver violations.
  [[nodiscard]] std::vector<Violation> finish() const;

 private:
  LayerConfig config_;
  std::vector<Violation> config_violations_;
  std::vector<bool> waiver_used_;
};

/// Scans every .h/.cpp under root/src with default_config(). Violations
/// are sorted by (file, line, kind).
[[nodiscard]] std::vector<Violation> check_tree(const std::string& root);

/// "file:line: [kind] message" for human and CI output.
[[nodiscard]] std::string format(const Violation& violation);

}  // namespace acdn::layer
