// Rule-level coverage for layer_check: must-fire and must-pass edges
// against a small in-memory DAG, config validation (cycles, unknown
// deps), waiver use and staleness, comment-awareness of the include
// scanner, and the real tree, which must be clean.
#include "layer_check/layer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace acdn::layer {
namespace {

std::string dump(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += format(v) + "\n";
  return out;
}

int count_kind(const std::vector<Violation>& violations,
               const std::string& kind) {
  int n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

/// base <- mid <- top, with `top` also allowed to reach `base`
/// transitively.
LayerConfig tiny_config() {
  LayerConfig config;
  config.modules = {
      {"base", {}},
      {"mid", {"base"}},
      {"top", {"mid"}},
  };
  return config;
}

TEST(LayerCheck, DownwardAndTransitiveIncludesPass) {
  Checker checker(tiny_config());
  ASSERT_TRUE(checker.config_violations().empty())
      << dump(checker.config_violations());
  const auto violations = checker.check_file(
      "src/top/a.cpp",
      "#include \"top/a.h\"\n"
      "#include \"mid/b.h\"\n"
      "#include \"base/c.h\"\n"  // transitive: top -> mid -> base
      "#include <vector>\n"
      "#include \"same_dir_header.h\"\n");
  EXPECT_TRUE(violations.empty()) << dump(violations);
}

TEST(LayerCheck, UpwardIncludeFires) {
  Checker checker(tiny_config());
  const auto violations =
      checker.check_file("src/base/c.cpp", "#include \"top/a.h\"\n");
  ASSERT_EQ(violations.size(), 1u) << dump(violations);
  EXPECT_EQ(violations[0].kind, "undeclared-dependency");
  EXPECT_EQ(violations[0].line, 1);
  EXPECT_NE(violations[0].message.find("upward include"),
            std::string::npos)
      << violations[0].message;
}

TEST(LayerCheck, SidewaysUndeclaredEdgeFires) {
  LayerConfig config = tiny_config();
  config.modules.push_back({"side", {"base"}});
  Checker checker(std::move(config));
  // side and mid are siblings: neither layers above the other, so the
  // message suggests declaring the edge rather than inverting it.
  const auto violations =
      checker.check_file("src/side/s.cpp", "#include \"mid/b.h\"\n");
  ASSERT_EQ(violations.size(), 1u) << dump(violations);
  EXPECT_EQ(violations[0].kind, "undeclared-dependency");
  EXPECT_EQ(violations[0].message.find("upward include"),
            std::string::npos)
      << violations[0].message;
}

TEST(LayerCheck, UnknownModulesFire) {
  Checker checker(tiny_config());
  const auto bad_dir =
      checker.check_file("src/rogue/r.cpp", "#include \"base/c.h\"\n");
  EXPECT_EQ(count_kind(bad_dir, "unknown-module"), 1) << dump(bad_dir);

  const auto bad_include =
      checker.check_file("src/top/a.cpp", "#include \"nosuch/x.h\"\n");
  EXPECT_EQ(count_kind(bad_include, "unknown-module"), 1)
      << dump(bad_include);
}

TEST(LayerCheck, FilesOutsideTheLayersAreExempt) {
  Checker checker(tiny_config());
  EXPECT_TRUE(
      checker.check_file("tests/a_test.cpp", "#include \"top/a.h\"\n")
          .empty());
  // The umbrella header at the src root sits above every layer.
  EXPECT_TRUE(
      checker.check_file("src/acdn.h", "#include \"top/a.h\"\n").empty());
}

TEST(LayerCheck, WaiversAllowTheExactEdgeAndGoStaleOtherwise) {
  LayerConfig config = tiny_config();
  config.waivers = {
      {"base", "top/a.h", "test waiver"},
      {"base", "top/unused.h", "never matched"},
  };
  Checker checker(std::move(config));
  const auto violations =
      checker.check_file("src/base/c.cpp", "#include \"top/a.h\"\n");
  EXPECT_TRUE(violations.empty()) << dump(violations);

  const auto stale = checker.finish();
  ASSERT_EQ(stale.size(), 1u) << dump(stale);
  EXPECT_EQ(stale[0].kind, "stale-waiver");
  EXPECT_NE(stale[0].message.find("top/unused.h"), std::string::npos);
}

TEST(LayerCheck, ConfigCyclesAndUnknownDepsAreCaught) {
  LayerConfig cyclic;
  cyclic.modules = {{"a", {"b"}}, {"b", {"a"}}};
  Checker checker(std::move(cyclic));
  EXPECT_EQ(count_kind(checker.config_violations(), "config-cycle"), 1)
      << dump(checker.config_violations());

  LayerConfig dangling;
  dangling.modules = {{"a", {"ghost"}}};
  Checker dangling_checker(std::move(dangling));
  EXPECT_EQ(
      count_kind(dangling_checker.config_violations(), "config-cycle"), 1)
      << dump(dangling_checker.config_violations());
}

TEST(LayerCheck, IncludeScannerIsCommentAware) {
  const auto includes = quoted_includes(
      "// #include \"a/commented.h\"\n"
      "/* #include \"a/blocked.h\" */\n"
      "/*\n"
      "#include \"a/multiline.h\"\n"
      "*/\n"
      "#include \"a/real.h\"\n"
      "  #include \"b/indented.h\"\n"
      "#include <system_header>\n");
  ASSERT_EQ(includes.size(), 2u);
  EXPECT_EQ(includes[0].path, "a/real.h");
  EXPECT_EQ(includes[0].line, 6);
  EXPECT_EQ(includes[1].path, "b/indented.h");
  EXPECT_EQ(includes[1].line, 7);
}

TEST(LayerCheck, DefaultConfigIsValid) {
  Checker checker(default_config());
  EXPECT_TRUE(checker.config_violations().empty())
      << dump(checker.config_violations());
}

TEST(LayerCheck, BatchKernelHeadersFollowTheCommonEdges) {
  // The batch-kernel layer (common/radix.h, common/simd.h) is a leaf of
  // the DAG: every pipeline layer that was rewired onto it reaches *down*
  // to common, which needs no new edges.
  Checker checker(default_config());
  ASSERT_TRUE(checker.config_violations().empty())
      << dump(checker.config_violations());
  const std::string kernels =
      "#include \"common/radix.h\"\n"
      "#include \"common/simd.h\"\n";
  for (const char* file :
       {"src/analysis/aggregate.cpp", "src/beacon/store.cpp",
        "src/geo/geo_point.cpp", "src/latency/rtt_model.cpp",
        "src/core/streaming.cpp"}) {
    const auto violations = checker.check_file(file, kernels);
    EXPECT_TRUE(violations.empty()) << file << "\n" << dump(violations);
  }
  // And the kernels cannot reach back up: common including geo (say, for
  // kEarthRadiusKm) would invert the DAG. That is why the haversine
  // kernels take 2R as a parameter instead of naming the constant.
  const auto upward = checker.check_file(
      "src/common/simd.cpp", "#include \"geo/geo_point.h\"\n");
  ASSERT_EQ(upward.size(), 1u) << dump(upward);
  EXPECT_EQ(upward[0].kind, "undeclared-dependency");
}

TEST(LayerTree, RealTreeIsClean) {
  const auto violations = check_tree(ACDN_LAYER_SOURCE_ROOT);
  EXPECT_TRUE(violations.empty())
      << "layering violations in the tree:\n"
      << dump(violations);
}

}  // namespace
}  // namespace acdn::layer
