// layer_check CLI: `layer_check <repo-root>`.
//
// Checks every quoted #include under <repo-root>/src against the layer
// DAG declared in layer.cpp (which mirrors the CMake link graph) and
// exits 1 on any violation — this is the LayerCheck ctest.
//
// Exit codes: 0 clean, 1 violations, 2 usage error or unreadable root.
#include <filesystem>
#include <iostream>
#include <string>

#include "layer_check/layer.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: layer_check <repo-root>\n";
    return 2;
  }
  const std::string root = argv[1];
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "layer_check: not a directory: " << root << "\n";
    return 2;
  }
  const auto violations = acdn::layer::check_tree(root);
  for (const auto& v : violations) {
    std::cout << acdn::layer::format(v) << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size()
              << " layer violation(s). The DAG lives in "
                 "tools/layer_check/layer.cpp (docs/ARCHITECTURE.md, "
                 "Correctness tooling).\n";
    return 1;
  }
  return 0;
}
