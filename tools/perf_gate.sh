#!/usr/bin/env bash
# Perf-smoke gate: fail when the smoke benchmark's simulation phase
# regresses more than the tolerance against the committed reference.
#
#   tools/perf_gate.sh <smoke_json> [reference_json] [tolerance_pct]
#
# Compares the smoke run's `sim.ns_per_row` (scale "small" — the only
# scale --smoke runs) against the same figure in the committed repo-root
# BENCH_pipeline.json. CI runners are noisy, so the default tolerance is
# a generous 25%: the gate catches step-change regressions (an O(clients)
# loop reappearing in route resolution), not jitter. Override the
# tolerance via argument 3 or skip entirely with ACDN_PERF_GATE=off.
set -euo pipefail

smoke_json="${1:?usage: perf_gate.sh <smoke_json> [reference_json] [tolerance_pct]}"
reference_json="${2:-BENCH_pipeline.json}"
tolerance_pct="${3:-25}"

if [[ "${ACDN_PERF_GATE:-on}" == "off" ]]; then
  echo "perf_gate: skipped (ACDN_PERF_GATE=off)"
  exit 0
fi

for f in "$smoke_json" "$reference_json"; do
  if [[ ! -f "$f" ]]; then
    echo "perf_gate: missing $f" >&2
    exit 2
  fi
done

# First "sim" ns_per_row after the "small" scale header. The bench JSON is
# machine-written with one phase per line, so line-oriented awk is enough —
# no jq dependency.
extract_small_sim_ns() {
  awk '
    /"name": "small"/ { in_small = 1 }
    in_small && /"sim":/ {
      if (match($0, /"ns_per_row": [0-9.]+/)) {
        print substr($0, RSTART + 14, RLENGTH - 14)
        exit
      }
    }
  ' "$1"
}

smoke_ns="$(extract_small_sim_ns "$smoke_json")"
ref_ns="$(extract_small_sim_ns "$reference_json")"

if [[ -z "$smoke_ns" || -z "$ref_ns" ]]; then
  echo "perf_gate: could not extract small-scale sim.ns_per_row" >&2
  echo "  smoke:     '$smoke_ns' from $smoke_json" >&2
  echo "  reference: '$ref_ns' from $reference_json" >&2
  exit 2
fi

awk -v smoke="$smoke_ns" -v ref="$ref_ns" -v tol="$tolerance_pct" '
  BEGIN {
    limit = ref * (1 + tol / 100)
    printf "perf_gate: sim ns/row smoke=%.2f reference=%.2f limit=%.2f (+%s%%)\n", \
           smoke, ref, limit, tol
    if (smoke > limit) {
      printf "perf_gate: FAIL — sim phase regressed %.1f%% (> %s%%)\n", \
             (smoke / ref - 1) * 100, tol
      exit 1
    }
    printf "perf_gate: OK\n"
  }
'
