#!/usr/bin/env bash
# Perf-smoke gate: fail when any gated smoke-benchmark phase regresses
# more than its tolerance against the committed reference.
#
#   tools/perf_gate.sh <smoke_json> [reference_json] [tolerance_pct]
#
# Gates the smoke run's small-scale `sim`, `join`, and `aggregate`
# ns_per_row (scale "small" — the only scale --smoke runs) against the
# same figures in the committed repo-root BENCH_pipeline.json. CI runners
# are noisy and the committed reference is a full (many-rep, warm) run,
# so the default tolerances are deliberately loose: the gate catches
# step-change regressions (an O(clients) loop reappearing in route
# resolution, a comparison sort sneaking back into the join — both were
# multiples, not percentages), not scheduler jitter. Small-scale smoke
# runs on a shared runner swing close to 2x between invocations; the
# pre-batch-kernel join was 9x the current reference, so a 2x sim band
# and a 3x join/aggregate band still have a wide margin to the failures
# they exist to catch. The two short phases get the wider band because
# their smoke rep counts are small, so their variance is higher.
# Override the base tolerance via argument 3 (join/aggregate run at 2x
# the base) or skip entirely with ACDN_PERF_GATE=off.
#
# Scaling gate: the same invocation also checks the large-scale thread
# sweep — for each deterministic stage (join, aggregate), ns/row at 4
# threads must not exceed ns/row at 1 thread by more than 10%. This is
# the cost-model contract (common/cost_model.h): shard counts derive from
# input size, so asking for more threads than the work supports falls
# back to the serial path instead of paying fan-out overhead. The smoke
# candidate only runs the small scale, so the sweep is read from
# whichever input file carries it (the candidate when it is a full run,
# else the committed reference — deterministic at gate time either way).
set -euo pipefail

smoke_json="${1:?usage: perf_gate.sh <smoke_json> [reference_json] [tolerance_pct]}"
reference_json="${2:-BENCH_pipeline.json}"
tolerance_pct="${3:-100}"

if [[ "${ACDN_PERF_GATE:-on}" == "off" ]]; then
  echo "perf_gate: skipped (ACDN_PERF_GATE=off)"
  exit 0
fi

for f in "$smoke_json" "$reference_json"; do
  if [[ ! -f "$f" ]]; then
    echo "perf_gate: missing $f" >&2
    exit 2
  fi
done

# First `"<phase>":` ns_per_row after the "small" scale header. The bench
# JSON is machine-written with one phase per line, so line-oriented awk is
# enough — no jq dependency. The thread_sweep section uses different key
# names (join_ns_per_row), so it cannot shadow the phase lines.
extract_small_phase_ns() {
  awk -v phase="\"$2\":" '
    /"name": "small"/ { in_small = 1 }
    in_small && index($0, phase) {
      if (match($0, /"ns_per_row": [0-9.]+/)) {
        print substr($0, RSTART + 14, RLENGTH - 14)
        exit
      }
    }
  ' "$1"
}

status=0
gate_phase() {
  local phase="$1" tol="$2"
  local smoke_ns ref_ns
  smoke_ns="$(extract_small_phase_ns "$smoke_json" "$phase")"
  ref_ns="$(extract_small_phase_ns "$reference_json" "$phase")"
  if [[ -z "$smoke_ns" || -z "$ref_ns" ]]; then
    echo "perf_gate: could not extract small-scale $phase.ns_per_row" >&2
    echo "  smoke:     '$smoke_ns' from $smoke_json" >&2
    echo "  reference: '$ref_ns' from $reference_json" >&2
    exit 2
  fi
  awk -v phase="$phase" -v smoke="$smoke_ns" -v ref="$ref_ns" -v tol="$tol" '
    BEGIN {
      limit = ref * (1 + tol / 100)
      printf "perf_gate: %-9s ns/row smoke=%.2f reference=%.2f limit=%.2f (+%s%%)\n", \
             phase, smoke, ref, limit, tol
      if (smoke > limit) {
        printf "perf_gate: FAIL — %s phase regressed %.1f%% (> %s%%)\n", \
               phase, (smoke / ref - 1) * 100, tol
        exit 1
      }
    }
  ' || status=1
}

gate_phase sim "$tolerance_pct"
gate_phase join "$((tolerance_pct * 2))"
gate_phase aggregate "$((tolerance_pct * 2))"

# `"<key>": <value>` from the large-scale thread_sweep entry with the
# given thread count. Sweep lines are the only place join_ns_per_row /
# aggregate_ns_per_row appear, so the scale-header "threads" line cannot
# satisfy both patterns.
extract_sweep_ns() {
  awk -v want="\"threads\": $2," -v key="\"$3\": " '
    /"name": "large"/ { in_large = 1 }
    in_large && /"name":/ && !/"name": "large"/ { in_large = 0 }
    in_large && index($0, want) && index($0, key) {
      if (match($0, key "[0-9.]+")) {
        print substr($0, RSTART + length(key), RLENGTH - length(key))
        exit
      }
    }
  ' "$1"
}

scale_file=""
for f in "$smoke_json" "$reference_json"; do
  if [[ -n "$(extract_sweep_ns "$f" 1 join_ns_per_row)" ]]; then
    scale_file="$f"
    break
  fi
done
if [[ -z "$scale_file" ]]; then
  echo "perf_gate: no large-scale thread_sweep in either input" >&2
  exit 2
fi

gate_scaling() {
  local key="$1"
  local one_ns four_ns
  one_ns="$(extract_sweep_ns "$scale_file" 1 "$key")"
  four_ns="$(extract_sweep_ns "$scale_file" 4 "$key")"
  if [[ -z "$one_ns" || -z "$four_ns" ]]; then
    echo "perf_gate: could not extract large-scale $key sweep from $scale_file" >&2
    exit 2
  fi
  awk -v key="$key" -v one="$one_ns" -v four="$four_ns" '
    BEGIN {
      limit = one * 1.10
      printf "perf_gate: %-24s 1t=%.2f 4t=%.2f limit=%.2f (+10%%)\n", \
             key, one, four, limit
      if (four > limit) {
        printf "perf_gate: FAIL — %s at 4 threads is %.1f%% over 1 thread (> 10%%)\n", \
               key, (four / one - 1) * 100
        exit 1
      }
    }
  ' || status=1
}

gate_scaling join_ns_per_row
gate_scaling aggregate_ns_per_row

if [[ "$status" -ne 0 ]]; then
  exit 1
fi
echo "perf_gate: OK"
